"""Index-Based Partitioning (IBP) — the paper's appendix algorithm.

Three phases (Ou–Ranka–Fox, the paper's ref [10]):

1. **indexing** — map each vertex's N-dimensional coordinate to a 1-D
   index that preserves spatial proximity (row-major, shuffled
   row-major, or Hilbert);
2. **sorting** — order vertices by index;
3. **coloring** — cut the sorted list into ``P`` contiguous sublists of
   (nearly) equal total node weight.

IBP is the fast heuristic the paper uses to seed GA populations
(Table 1): it needs only coordinates, runs in ``O(n log n)``, and
produces spatially compact though not cut-optimized parts.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..errors import ConfigError, GraphError, PartitionError
from ..graphs.csr import CSRGraph
from ..indexing.hilbert import hilbert_indices
from ..indexing.rowmajor import row_major_indices
from ..indexing.shuffled import shuffled_row_major_indices
from ..partition.partition import Partition

__all__ = ["ibp_partition", "quantize_coords", "split_sorted"]

SCHEMES = ("row_major", "shuffled", "hilbert")


def quantize_coords(coords: np.ndarray, bits: int = 10) -> np.ndarray:
    """Scale continuous coordinates onto an integer ``2^bits`` grid.

    Each dimension is scaled independently over its own range, so the
    index sees the mesh's shape rather than its absolute units.
    """
    if bits < 1 or bits > 20:
        raise ConfigError(f"bits must be in [1, 20], got {bits}")
    pts = np.asarray(coords, dtype=np.float64)
    if pts.ndim != 2:
        raise ConfigError(f"coords must be 2-D, got shape {pts.shape}")
    lo = pts.min(axis=0)
    hi = pts.max(axis=0)
    span = np.where(hi > lo, hi - lo, 1.0)
    side = (1 << bits) - 1
    q = np.floor((pts - lo) / span * side + 0.5).astype(np.int64)
    return np.clip(q, 0, side)


def split_sorted(
    order: np.ndarray, node_weights: np.ndarray, n_parts: int
) -> np.ndarray:
    """Phase 3: cut the sorted vertex list into ``n_parts`` equal-weight
    contiguous sublists; returns the label array."""
    if n_parts < 1:
        raise PartitionError(f"n_parts must be >= 1, got {n_parts}")
    n = order.shape[0]
    labels = np.empty(n, dtype=np.int64)
    w = node_weights[order]
    cumw = np.cumsum(w)
    total = cumw[-1] if n else 0.0
    if total <= 0:
        # all-zero weights: fall back to equal counts
        bounds = np.linspace(0, n, n_parts + 1).astype(np.int64)
        for q in range(n_parts):
            labels[order[bounds[q] : bounds[q + 1]]] = q
        return labels
    # boundary after the node where cumulative weight crosses q/P of total
    targets = total * np.arange(1, n_parts) / n_parts
    cuts = np.searchsorted(cumw, targets, side="left") + 1
    bounds = np.concatenate([[0], np.clip(cuts, 0, n), [n]])
    bounds = np.maximum.accumulate(bounds)
    for q in range(n_parts):
        labels[order[bounds[q] : bounds[q + 1]]] = q
    return labels


def ibp_partition(
    graph: CSRGraph,
    n_parts: int,
    scheme: str = "shuffled",
    bits: Optional[int] = None,
) -> Partition:
    """Partition a coordinate-carrying graph with the IBP algorithm.

    Parameters
    ----------
    graph:
        Must carry coordinates (``graph.coords``); raises otherwise.
    n_parts:
        Number of parts ``P``.
    scheme:
        ``"row_major"``, ``"shuffled"`` (paper default), or ``"hilbert"``
        (2-D only).
    bits:
        Quantization bits per dimension; default 10 (a 1024² grid),
        plenty for sub-thousand-node meshes.
    """
    if graph.coords is None:
        raise GraphError("IBP requires vertex coordinates")
    if scheme not in SCHEMES:
        raise ConfigError(f"scheme must be one of {SCHEMES}, got {scheme!r}")
    if n_parts < 1:
        raise PartitionError(f"n_parts must be >= 1, got {n_parts}")
    if n_parts > graph.n_nodes:
        raise PartitionError(
            f"cannot split {graph.n_nodes} nodes into {n_parts} parts"
        )
    b = 10 if bits is None else bits
    q = quantize_coords(graph.coords, bits=b)
    d = q.shape[1]
    shape = (1 << b,) * d
    if scheme == "row_major":
        idx = row_major_indices(q, shape)
    elif scheme == "shuffled":
        idx = shuffled_row_major_indices(q, shape)
    else:
        if d != 2:
            raise ConfigError("hilbert scheme supports 2-D coordinates only")
        idx = hilbert_indices(q, b)
    # stable sort on (index, node id) for determinism
    order = np.lexsort((np.arange(graph.n_nodes), idx))
    labels = split_sorted(order, graph.node_weights, n_parts)
    return Partition(graph, labels, n_parts)
