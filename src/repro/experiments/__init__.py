"""Experiment harness: workloads, specs, runner, and reporting."""

from .workloads import (
    BASE_SIZES,
    DERIVED_SIZES,
    INCREMENTAL_PAIRS,
    TRACE_GA_DEFAULTS,
    incremental_case,
    replay_trace,
    service_trace,
    workload,
    workload_names,
)
from .paper_values import PAPER_TABLES
from .registry import TABLE_SPECS, TableSpec, get_spec, list_specs
from .runner import (
    CellResult,
    RunnerSettings,
    TableResult,
    run_cell,
    run_table,
)
from .report import format_paper_comparison, format_summary, format_table
from .convergence import (
    ConvergenceResult,
    OperatorCurve,
    format_convergence,
    run_convergence,
)

__all__ = [
    "BASE_SIZES",
    "DERIVED_SIZES",
    "INCREMENTAL_PAIRS",
    "incremental_case",
    "workload",
    "workload_names",
    "TRACE_GA_DEFAULTS",
    "service_trace",
    "replay_trace",
    "PAPER_TABLES",
    "TABLE_SPECS",
    "TableSpec",
    "get_spec",
    "list_specs",
    "CellResult",
    "RunnerSettings",
    "TableResult",
    "run_cell",
    "run_table",
    "format_paper_comparison",
    "format_summary",
    "format_table",
    "ConvergenceResult",
    "OperatorCurve",
    "format_convergence",
    "run_convergence",
]
