"""Execution engine for the experiment tables.

For every cell (workload × part count) of a :class:`TableSpec` the
runner:

1. builds the workload graph (and, for incremental specs, partitions
   the base graph first);
2. computes the RSB comparison value;
3. seeds a population per the spec's regime and runs the DKNUX GA
   ``n_runs`` times (the paper reports the best of 5 runs);
4. records best-of-runs DKNUX value, the RSB value, and the published
   numbers side by side.

Two budget modes are provided: ``"quick"`` (default; minutes for the
whole suite, used by the benchmark harness) and ``"full"`` (paper-scale
best-of-5 with a larger population and generation budget).  The GA
configuration is a *memetic* single-population setup (hill-climbing on
all offspring) rather than the paper's plain 16-island DPGA; see
EXPERIMENTS.md for the rationale and the DPGA ablation bench for the
paper-literal configuration.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from ..baselines.ibp import ibp_partition
from ..baselines.rsb import rsb_partition
from ..errors import ExperimentError
from ..ga.config import GAConfig
from ..ga.dknux import DKNUX
from ..ga.engine import GAEngine
from ..ga.fitness import make_fitness
from ..ga.population import random_population, seeded_population
from ..graphs.csr import CSRGraph
from ..incremental.seeding import seed_population_from_previous
from ..partition.partition import Partition
from ..rng import SeedLike, as_generator
from .registry import TableSpec
from .workloads import incremental_case, workload

__all__ = ["CellResult", "TableResult", "RunnerSettings", "run_table", "run_cell"]


@dataclass(frozen=True)
class RunnerSettings:
    """Budget knobs for one table run."""

    n_runs: int
    ga_config: GAConfig

    @classmethod
    def quick(cls) -> "RunnerSettings":
        return cls(
            n_runs=1,
            ga_config=GAConfig(
                population_size=48,
                max_generations=60,
                patience=12,
                hill_climb="all",
                hill_climb_passes=2,
                mutation="boundary",
                mutation_rate=0.02,
            ),
        )

    @classmethod
    def full(cls) -> "RunnerSettings":
        return cls(
            n_runs=5,
            ga_config=GAConfig(
                population_size=128,
                max_generations=200,
                patience=40,
                hill_climb="all",
                hill_climb_passes=3,
                mutation="boundary",
                mutation_rate=0.02,
            ),
        )

    @classmethod
    def for_mode(cls, mode: str) -> "RunnerSettings":
        if mode == "quick":
            return cls.quick()
        if mode == "full":
            return cls.full()
        raise ExperimentError(f"unknown mode {mode!r}; expected quick or full")


@dataclass
class CellResult:
    """Measured and published values for one table cell."""

    row: str
    n_parts: int
    dknux: float
    rsb: float
    paper_dknux: Optional[float]
    paper_rsb: Optional[float]
    runtime_s: float

    @property
    def ga_wins(self) -> bool:
        """Did our DKNUX match or beat our RSB on this cell?"""
        return self.dknux <= self.rsb


@dataclass
class TableResult:
    """All cells of one table."""

    spec: TableSpec
    cells: list[CellResult]
    mode: str
    seed: int
    runtime_s: float

    def cell(self, row: str, k: int) -> CellResult:
        for c in self.cells:
            if c.row == row and c.n_parts == k:
                return c
        raise ExperimentError(f"no cell ({row!r}, {k}) in {self.spec.table_id}")

    @property
    def ga_win_fraction(self) -> float:
        """Fraction of cells where DKNUX <= RSB (the paper's headline
        claim is that this is most cells)."""
        if not self.cells:
            return 0.0
        return sum(c.ga_wins for c in self.cells) / len(self.cells)


def _metric(partition: Partition, metric: str) -> float:
    return partition.cut_size if metric == "cut" else partition.max_part_cut


def _resolve_workload(row: str) -> tuple[CSRGraph, Optional[tuple[CSRGraph, int]]]:
    """Graph for a row; incremental rows also return (base_graph, added)."""
    if "+" in row:
        base_s, added_s = row.split("+")
        base_graph, update = incremental_case(int(base_s), int(added_s))
        return update.graph, (base_graph, int(added_s))
    return workload(int(row)), None


def _partition_base_graph(
    base_graph: CSRGraph,
    n_parts: int,
    fitness_kind: str,
    settings: RunnerSettings,
    rng: np.random.Generator,
) -> Partition:
    """Partition the pre-update graph for incremental experiments.

    The paper first partitions the original graph with its GA; we seed
    that run from RSB (its recommended practice) for stable quality.
    """
    seed_part = rsb_partition(base_graph, n_parts)
    fitness = make_fitness(fitness_kind, base_graph, n_parts)
    pop = seeded_population(
        base_graph,
        n_parts,
        settings.ga_config.population_size,
        seed_part.assignment,
        seed=rng,
    )
    engine = GAEngine(
        base_graph, fitness, DKNUX(base_graph, n_parts),
        config=settings.ga_config, seed=rng,
    )
    return engine.run(pop).best


def run_cell(
    spec: TableSpec,
    row: str,
    n_parts: int,
    settings: Optional[RunnerSettings] = None,
    seed: SeedLike = 0,
) -> CellResult:
    """Run one (workload, k) cell of a table."""
    settings = settings or RunnerSettings.quick()
    rng = as_generator(seed)
    start = time.perf_counter()

    graph, incremental = _resolve_workload(row)
    rsb = rsb_partition(graph, n_parts)
    rsb_value = _metric(rsb, spec.metric)

    base_partition: Optional[Partition] = None
    if spec.seeding == "incremental":
        assert incremental is not None
        base_graph, _ = incremental
        base_partition = _partition_base_graph(
            base_graph, n_parts, spec.fitness_kind, settings, rng
        )

    fitness = make_fitness(spec.fitness_kind, graph, n_parts)
    best_value = np.inf
    for _ in range(settings.n_runs):
        if spec.seeding == "random":
            init_pop = random_population(
                graph.n_nodes, n_parts, settings.ga_config.population_size,
                seed=rng,
            )
        elif spec.seeding == "ibp":
            seed_part = ibp_partition(graph, n_parts)
            init_pop = seeded_population(
                graph, n_parts, settings.ga_config.population_size,
                seed_part.assignment, seed=rng,
            )
        elif spec.seeding == "rsb":
            init_pop = seeded_population(
                graph, n_parts, settings.ga_config.population_size,
                rsb.assignment, seed=rng,
            )
        else:  # incremental
            assert base_partition is not None
            init_pop = seed_population_from_previous(
                graph, base_partition.assignment, n_parts,
                settings.ga_config.population_size, seed=rng,
            )
        engine = GAEngine(
            graph, fitness, DKNUX(graph, n_parts),
            config=settings.ga_config, seed=rng,
        )
        result = engine.run(init_pop)
        best_value = min(best_value, _metric(result.best, spec.metric))

    paper = spec.paper_cell(row, n_parts)
    return CellResult(
        row=row,
        n_parts=n_parts,
        dknux=float(best_value),
        rsb=float(rsb_value),
        paper_dknux=None if paper is None else paper[0],
        paper_rsb=None if paper is None else paper[1],
        runtime_s=time.perf_counter() - start,
    )


def run_table(
    spec: TableSpec,
    mode: str = "quick",
    seed: int = 0,
) -> TableResult:
    """Run every cell of a table spec.

    Each cell gets an independent child RNG stream derived from
    ``seed``, so cells are reproducible in isolation and in any order.
    """
    settings = RunnerSettings.for_mode(mode)
    start = time.perf_counter()
    cells = []
    for i, (row, k) in enumerate(spec.cells):
        cell_seed = np.random.SeedSequence([seed, i])
        cells.append(run_cell(spec, row, k, settings=settings, seed=cell_seed))
    return TableResult(
        spec=spec,
        cells=cells,
        mode=mode,
        seed=seed,
        runtime_s=time.perf_counter() - start,
    )
