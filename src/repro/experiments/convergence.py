"""The paper's convergence figures as a first-class experiment.

Section 4: "The figures are obtained by averaging the results of 5
runs" — best-fitness-vs-generation curves showing KNUX and DKNUX
converging orders of magnitude faster than traditional crossover.
:func:`run_convergence` regenerates those series for any workload;
:func:`format_convergence` renders the comparison plus two speed
metrics (normalized AUC, generations-to-reach-the-traditional-final).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..baselines.ibp import ibp_partition
from ..errors import ExperimentError
from ..ga.analysis import (
    ConvergenceSummary,
    aggregate_histories,
    generations_to_reach,
    normalized_auc,
)
from ..ga.config import GAConfig
from ..ga.crossover import TwoPointCrossover, UniformCrossover
from ..ga.dknux import DKNUX
from ..ga.engine import GAEngine
from ..ga.fitness import make_fitness
from ..ga.knux import KNUX
from .workloads import workload

__all__ = ["OperatorCurve", "ConvergenceResult", "run_convergence", "format_convergence"]

OPERATORS = ("2-point", "uniform", "knux", "dknux")


@dataclass
class OperatorCurve:
    """Aggregated trajectory for one operator."""

    operator: str
    summary: ConvergenceSummary
    auc: float  # mean normalized AUC over runs
    speedup_generation: Optional[int]  # gen where it passes 2-point's final


@dataclass
class ConvergenceResult:
    size: int
    n_parts: int
    n_runs: int
    generations: int
    curves: dict[str, OperatorCurve]


def _operator(name: str, graph, n_parts: int):
    if name == "2-point":
        return TwoPointCrossover()
    if name == "uniform":
        return UniformCrossover()
    if name == "knux":
        return KNUX(graph, ibp_partition(graph, n_parts).assignment, n_parts)
    if name == "dknux":
        return DKNUX(graph, n_parts)
    raise ExperimentError(f"unknown operator {name!r}")


def run_convergence(
    size: int = 144,
    n_parts: int = 4,
    n_runs: int = 5,
    generations: int = 100,
    population_size: int = 64,
    fitness_kind: str = "fitness1",
    seed: int = 0,
) -> ConvergenceResult:
    """Regenerate the operator-convergence figure for one workload."""
    if n_runs < 1:
        raise ExperimentError(f"n_runs must be >= 1, got {n_runs}")
    graph = workload(size)
    fitness = make_fitness(fitness_kind, graph, n_parts)
    cfg = GAConfig(population_size=population_size, max_generations=generations)

    histories: dict[str, list] = {}
    for name in OPERATORS:
        histories[name] = []
        for run in range(n_runs):
            engine = GAEngine(
                graph,
                fitness,
                _operator(name, graph, n_parts),
                cfg,
                seed=seed * 10_000 + run,
            )
            histories[name].append(engine.run().history)

    # the traditional-operator reference level for the speed metric
    ref_final = float(
        np.mean([h.best_fitness[-1] for h in histories["2-point"]])
    )
    curves = {}
    for name in OPERATORS:
        summary = aggregate_histories(histories[name])
        speed = generations_to_reach(histories[name][0], ref_final)
        curves[name] = OperatorCurve(
            operator=name,
            summary=summary,
            auc=float(np.mean([normalized_auc(h) for h in histories[name]])),
            speedup_generation=speed,
        )
    return ConvergenceResult(
        size=size,
        n_parts=n_parts,
        n_runs=n_runs,
        generations=generations,
        curves=curves,
    )


def format_convergence(result: ConvergenceResult) -> str:
    """Text rendering of the convergence comparison."""
    gens = result.curves["2-point"].summary.n_generations
    checkpoints = sorted(
        {0, gens // 8, gens // 4, gens // 2, 3 * gens // 4, gens - 1}
    )
    lines = [
        f"Convergence figure: {result.size}-node mesh, k={result.n_parts}, "
        f"mean best fitness over {result.n_runs} runs",
        "",
        "generation " + " ".join(f"{n:>10}" for n in OPERATORS),
    ]
    for gen in checkpoints:
        lines.append(
            f"{gen:>10} "
            + " ".join(
                f"{result.curves[n].summary.mean[gen]:>10.0f}"
                for n in OPERATORS
            )
        )
    lines.append("")
    lines.append(
        "normalized AUC (1.0 = instant convergence): "
        + ", ".join(f"{n}={result.curves[n].auc:.2f}" for n in OPERATORS)
    )
    for name in ("knux", "dknux"):
        gen = result.curves[name].speedup_generation
        if gen is not None:
            lines.append(
                f"{name} reaches 2-point's final fitness at generation "
                f"{gen} of {gens - 1}"
            )
    return "\n".join(lines)
