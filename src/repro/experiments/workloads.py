"""The canonical workload suite behind Tables 1–6.

The paper's graph sizes compose exactly: every size it evaluates is
either a *base* mesh or a base mesh plus one of the incremental
insertions of Tables 3/6 (88 = 78+10, 98 = 78+20, 139 = 118+21,
213 = 183+30, 243 = 183+60, 279 = 249+30, 309 = 249+60).  We mirror
that structure: base meshes come from :func:`repro.graphs.meshes.paper_mesh`
and derived sizes are produced by the *same* deterministic incremental
update used in the incremental experiments, so for example the
"213 node" graph of Tables 2/5 *is* the "183 plus 30" graph of
Tables 3/6, exactly as in the paper.

The only size not derivable this way is 159 (= 118+41, a Table 3 case
that never appears as a standalone graph) and the stand-alone bases
144/167 of Tables 1/4.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from ..errors import ExperimentError
from ..graphs.csr import CSRGraph
from ..graphs.meshes import paper_mesh
from ..incremental.updates import IncrementalUpdate, insert_local_nodes

__all__ = [
    "BASE_SIZES",
    "DERIVED_SIZES",
    "INCREMENTAL_PAIRS",
    "workload",
    "incremental_case",
    "workload_names",
]

#: sizes generated directly as meshes
BASE_SIZES: tuple[int, ...] = (78, 118, 144, 167, 183, 249)

#: composite size -> (base size, nodes added)
DERIVED_SIZES: dict[int, tuple[int, int]] = {
    88: (78, 10),
    98: (78, 20),
    139: (118, 21),
    159: (118, 41),
    213: (183, 30),
    243: (183, 60),
    279: (249, 30),
    309: (249, 60),
}

#: every (base, added) incremental case in Tables 3 and 6
INCREMENTAL_PAIRS: tuple[tuple[int, int], ...] = (
    (78, 10),
    (78, 20),
    (118, 21),
    (118, 41),
    (183, 30),
    (183, 60),
    (249, 30),
    (249, 60),
)

#: deterministic seed namespace for the insertions
_UPDATE_SEED_BASE = 19941115  # SC'94 conference week


@lru_cache(maxsize=None)
def incremental_case(base: int, added: int) -> tuple[CSRGraph, IncrementalUpdate]:
    """The canonical ``base + added`` update: ``(base_graph, update)``.

    Deterministic: the same pair always produces the identical base
    graph and insertion, across processes and library versions.
    """
    if added < 1:
        raise ExperimentError(f"added must be >= 1, got {added}")
    base_graph = paper_mesh(base)
    update = insert_local_nodes(
        base_graph, added, seed=_UPDATE_SEED_BASE + base * 1000 + added
    )
    return base_graph, update


@lru_cache(maxsize=None)
def workload(size: int) -> CSRGraph:
    """The canonical graph of a given node count.

    Base sizes are plain paper meshes; composite sizes are built through
    their incremental derivation so standalone and incremental tables
    agree on what, e.g., "213 nodes" means.
    """
    if size in DERIVED_SIZES:
        base, added = DERIVED_SIZES[size]
        _, update = incremental_case(base, added)
        return update.graph
    return paper_mesh(size)


def workload_names() -> list[str]:
    """All canonical workload labels, base then derived."""
    return [str(s) for s in BASE_SIZES] + [
        f"{b}+{a}" for b, a in INCREMENTAL_PAIRS
    ]
