"""The canonical workload suite behind Tables 1–6.

The paper's graph sizes compose exactly: every size it evaluates is
either a *base* mesh or a base mesh plus one of the incremental
insertions of Tables 3/6 (88 = 78+10, 98 = 78+20, 139 = 118+21,
213 = 183+30, 243 = 183+60, 279 = 249+30, 309 = 249+60).  We mirror
that structure: base meshes come from :func:`repro.graphs.meshes.paper_mesh`
and derived sizes are produced by the *same* deterministic incremental
update used in the incremental experiments, so for example the
"213 node" graph of Tables 2/5 *is* the "183 plus 30" graph of
Tables 3/6, exactly as in the paper.

The only size not derivable this way is 159 (= 118+41, a Table 3 case
that never appears as a standalone graph) and the stand-alone bases
144/167 of Tables 1/4.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from ..errors import ExperimentError
from ..graphs.csr import CSRGraph
from ..graphs.meshes import paper_mesh
from ..incremental.updates import IncrementalUpdate, insert_local_nodes

__all__ = [
    "BASE_SIZES",
    "DERIVED_SIZES",
    "INCREMENTAL_PAIRS",
    "workload",
    "incremental_case",
    "workload_names",
    "service_trace",
    "replay_trace",
    "TRACE_GA_DEFAULTS",
]

#: sizes generated directly as meshes
BASE_SIZES: tuple[int, ...] = (78, 118, 144, 167, 183, 249)

#: composite size -> (base size, nodes added)
DERIVED_SIZES: dict[int, tuple[int, int]] = {
    88: (78, 10),
    98: (78, 20),
    139: (118, 21),
    159: (118, 41),
    213: (183, 30),
    243: (183, 60),
    279: (249, 30),
    309: (249, 60),
}

#: every (base, added) incremental case in Tables 3 and 6
INCREMENTAL_PAIRS: tuple[tuple[int, int], ...] = (
    (78, 10),
    (78, 20),
    (118, 21),
    (118, 41),
    (183, 30),
    (183, 60),
    (249, 30),
    (249, 60),
)

#: deterministic seed namespace for the insertions
_UPDATE_SEED_BASE = 19941115  # SC'94 conference week


@lru_cache(maxsize=None)
def incremental_case(base: int, added: int) -> tuple[CSRGraph, IncrementalUpdate]:
    """The canonical ``base + added`` update: ``(base_graph, update)``.

    Deterministic: the same pair always produces the identical base
    graph and insertion, across processes and library versions.
    """
    if added < 1:
        raise ExperimentError(f"added must be >= 1, got {added}")
    base_graph = paper_mesh(base)
    update = insert_local_nodes(
        base_graph, added, seed=_UPDATE_SEED_BASE + base * 1000 + added
    )
    return base_graph, update


@lru_cache(maxsize=None)
def workload(size: int) -> CSRGraph:
    """The canonical graph of a given node count.

    Base sizes are plain paper meshes; composite sizes are built through
    their incremental derivation so standalone and incremental tables
    agree on what, e.g., "213 nodes" means.
    """
    if size in DERIVED_SIZES:
        base, added = DERIVED_SIZES[size]
        _, update = incremental_case(base, added)
        return update.graph
    return paper_mesh(size)


def workload_names() -> list[str]:
    """All canonical workload labels, base then derived."""
    return [str(s) for s in BASE_SIZES] + [
        f"{b}+{a}" for b, a in INCREMENTAL_PAIRS
    ]


# ----------------------------------------------------------------------
# Replayable service traffic
# ----------------------------------------------------------------------

#: compact GA budget for replayed traffic — traces exist to exercise the
#: *serving* layer (caching, coalescing, sessions), not to reproduce
#: table-quality cuts, so each GA leg is deliberately small
TRACE_GA_DEFAULTS: dict = dict(
    population_size=24,
    max_generations=15,
    patience=5,
    hill_climb="all",
    hill_climb_passes=1,
)


def service_trace(
    n_requests: int = 20,
    seed: int = 0,
    n_parts: int = 4,
    repeat_fraction: float = 0.4,
    ga: "dict | None" = None,
) -> list[dict]:
    """Deterministic mixed service traffic derived from the workloads.

    The trace interleaves the three traffic shapes the paper's
    experiments imply: **one-shot** partitions of the base meshes
    (Tables 1/2-style), **repeated** requests (the same graph and seed
    arriving again — production's cache-hit traffic), and
    **incremental sessions** replaying the Tables 3/6 pattern (open on
    the base mesh, send the canonical insertion as an update, close).

    Returns a list of JSON-able op dicts (``op`` ∈ ``partition | open |
    update | close``) that :func:`replay_trace` executes against either
    service client.  The same ``(n_requests, seed)`` always produces
    the identical trace.
    """
    if n_requests < 1:
        raise ExperimentError(f"n_requests must be >= 1, got {n_requests}")
    if not 0.0 <= repeat_fraction <= 1.0:
        raise ExperimentError(
            f"repeat_fraction must be in [0, 1], got {repeat_fraction}"
        )
    ga = dict(TRACE_GA_DEFAULTS) if ga is None else dict(ga)
    rng = np.random.default_rng(seed)
    trace: list[dict] = []
    fresh: list[dict] = []  # issued one-shots eligible for repetition
    session_cycle = 0

    while len(trace) < n_requests:
        roll = rng.random()
        if fresh and roll < repeat_fraction:
            # repeat an earlier one-shot verbatim (cache-hit traffic)
            trace.append(dict(fresh[int(rng.integers(len(fresh)))]))
        elif roll < repeat_fraction + 0.3:
            size = int(BASE_SIZES[int(rng.integers(len(BASE_SIZES)))])
            op = {
                "op": "partition",
                "size": size,
                "n_parts": int(n_parts),
                "seed": int(rng.integers(3)),
                "ga": ga,
            }
            trace.append(op)
            fresh.append(op)
        else:
            # an incremental session: open → update → close (3 ops)
            base, added = INCREMENTAL_PAIRS[
                session_cycle % len(INCREMENTAL_PAIRS)
            ]
            alias = f"sess-{base}+{added}-{session_cycle}"
            session_cycle += 1
            trace.append(
                {
                    "op": "open",
                    "session": alias,
                    "base": int(base),
                    "added": int(added),
                    "n_parts": int(n_parts),
                    "seed": int(rng.integers(3)),
                    "ga": ga,
                }
            )
            trace.append(
                {"op": "update", "session": alias, "base": int(base),
                 "added": int(added)}
            )
            trace.append({"op": "close", "session": alias})
    return trace[:n_requests]


def replay_trace(client, trace: list[dict]) -> list[tuple[dict, object]]:
    """Execute a :func:`service_trace` against a service client.

    ``client`` is any object with the shared client verbs
    (:class:`repro.service.client.ServiceClient` or
    :class:`~repro.service.client.HTTPServiceClient`).  Returns
    ``[(op, result), ...]`` in trace order; ``close`` ops whose
    ``open``/``update`` was truncated off the end of the trace are
    answered with ``None``.
    """
    results: list[tuple[dict, object]] = []
    session_ids: dict[str, str] = {}
    for op in trace:
        kind = op["op"]
        if kind == "partition":
            result = client.partition(
                workload(op["size"]),
                op["n_parts"],
                seed=op["seed"],
                ga=op.get("ga"),
            )
        elif kind == "open":
            base_graph, _ = incremental_case(op["base"], op["added"])
            result = client.open_session(
                base_graph, op["n_parts"], seed=op["seed"], ga=op.get("ga")
            )
            session_ids[op["session"]] = result.session_id
        elif kind == "update":
            sid = session_ids.get(op["session"])
            if sid is None:
                result = None  # truncated trace: open fell off the end
            else:
                _, update = incremental_case(op["base"], op["added"])
                result = client.update_session(sid, update.graph)
        elif kind == "close":
            sid = session_ids.pop(op["session"], None)
            result = None if sid is None else client.close_session(sid)
        else:
            raise ExperimentError(f"unknown trace op {kind!r}")
        results.append((op, result))
    return results
