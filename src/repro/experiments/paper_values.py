"""The published numbers from Tables 1–6 of the paper.

Keys are ``(row_label, n_parts)``; values are ``(dknux, rsb)`` where
``rsb`` is ``None`` for the one row the paper prints without an RSB
comparison (78+20 in Table 6).  These are what EXPERIMENTS.md and the
benchmark harness print next to our measured values.

Tables 1–3 report total inter-part edges (``sum_q C(q) / 2``); Tables
4–6 report the worst part's boundary (``max_q C(q)``).
"""

from __future__ import annotations

from typing import Optional

__all__ = [
    "TABLE1",
    "TABLE2",
    "TABLE3",
    "TABLE4",
    "TABLE5",
    "TABLE6",
    "PAPER_TABLES",
]

PaperCell = tuple[float, Optional[float]]

# Table 1: DKNUX seeded with IBP vs RSB, Fitness 1, total cut.
TABLE1: dict[tuple[str, int], PaperCell] = {
    ("167", 2): (20, 20),
    ("167", 4): (63, 59),
    ("167", 8): (109, 120),
    ("144", 2): (33, 36),
    ("144", 4): (65, 78),
    ("144", 8): (120, 119),
}

# Table 2: DKNUX improving RSB solutions, Fitness 1, total cut.
TABLE2: dict[tuple[str, int], PaperCell] = {
    ("139", 2): (28, 30),
    ("139", 4): (65, 69),
    ("139", 8): (100, 113),
    ("213", 2): (41, 41),
    ("213", 4): (77, 82),
    ("213", 8): (138, 151),
    ("243", 2): (43, 47),
    ("243", 4): (88, 95),
    ("243", 8): (141, 154),
    ("279", 2): (36, 37),
    ("279", 4): (78, 88),
    ("279", 8): (139, 155),
}

# Table 3: incremental partitioning, Fitness 1, total cut.
TABLE3: dict[tuple[str, int], PaperCell] = {
    ("118+21", 2): (31, 30),
    ("118+21", 4): (61, 69),
    ("118+21", 8): (103, 113),
    ("118+41", 2): (31, 33),
    ("118+41", 4): (66, 75),
    ("118+41", 8): (120, 128),
    ("183+30", 2): (37, 41),
    ("183+30", 4): (72, 82),
    ("183+30", 8): (133, 151),
    ("183+60", 2): (44, 47),
    ("183+60", 4): (83, 95),
    ("183+60", 8): (160, 154),
}

# Table 4: random initialization, Fitness 2, worst cut.
TABLE4: dict[tuple[str, int], PaperCell] = {
    ("78", 4): (23, 26),
    ("78", 8): (23, 25),
    ("88", 4): (28, 33),
    ("88", 8): (21, 27),
    ("98", 4): (26, 30),
    ("98", 8): (23, 30),
    ("144", 4): (53, 44),
    ("144", 8): (42, 35),
    ("167", 4): (44, 40),
    ("167", 8): (39, 41),
}

# Table 5: improving RSB solutions, Fitness 2, worst cut.
TABLE5: dict[tuple[str, int], PaperCell] = {
    ("78", 4): (23, 26),
    ("78", 8): (20, 25),
    ("88", 4): (24, 33),
    ("88", 8): (22, 27),
    ("98", 4): (24, 30),
    ("98", 8): (22, 30),
    ("213", 4): (40, 46),
    ("213", 8): (41, 45),
    ("243", 4): (45, 51),
    ("243", 8): (41, 47),
    ("279", 4): (42, 46),
    ("279", 8): (42, 47),
    ("309", 4): (44, 46),
    ("309", 8): (47, 52),
}

# Table 6: incremental partitioning, Fitness 2, worst cut.
TABLE6: dict[tuple[str, int], PaperCell] = {
    ("78+10", 4): (27, 33),
    ("78+10", 8): (25, 27),
    ("78+20", 4): (29, None),
    ("78+20", 8): (27, None),
    ("118+21", 4): (33, 38),
    ("118+21", 8): (29, 34),
    ("118+41", 4): (34, 40),
    ("118+41", 8): (35, 39),
    ("183+30", 4): (41, 46),
    ("183+30", 8): (40, 45),
    ("183+60", 4): (46, 51),
    ("183+60", 8): (45, 47),
    ("249+30", 4): (42, 51),
    ("249+30", 8): (44, 47),
    ("249+60", 4): (46, 46),
    ("249+60", 8): (56, 52),
}

PAPER_TABLES: dict[str, dict[tuple[str, int], PaperCell]] = {
    "table1": TABLE1,
    "table2": TABLE2,
    "table3": TABLE3,
    "table4": TABLE4,
    "table5": TABLE5,
    "table6": TABLE6,
}
