"""Text rendering of experiment results, paper vs measured."""

from __future__ import annotations

from typing import Optional

from .runner import CellResult, TableResult

__all__ = ["format_table", "format_summary", "format_paper_comparison"]


def _fmt(value: Optional[float]) -> str:
    if value is None:
        return "--"
    return f"{value:g}"


def format_table(result: TableResult) -> str:
    """Render one table result like the paper's tables, with the
    published values inline for comparison."""
    spec = result.spec
    lines = [
        f"{spec.table_id.upper()}: {spec.title}",
        f"(metric: {'total cut  sum C(q)/2' if spec.metric == 'cut' else 'worst cut  max C(q)'}, "
        f"mode={result.mode}, seed={result.seed}, {result.runtime_s:.1f}s)",
        "",
    ]
    header = (
        f"{'graph':>10} {'k':>3} | {'DKNUX':>7} {'RSB':>7} {'winner':>7} | "
        f"{'paper-DKNUX':>11} {'paper-RSB':>9} {'paper-winner':>12}"
    )
    lines.append(header)
    lines.append("-" * len(header))
    for cell in result.cells:
        winner = "DKNUX" if cell.dknux < cell.rsb else (
            "tie" if cell.dknux == cell.rsb else "RSB"
        )
        if cell.paper_dknux is None or cell.paper_rsb is None:
            paper_winner = "--"
        elif cell.paper_dknux < cell.paper_rsb:
            paper_winner = "DKNUX"
        elif cell.paper_dknux == cell.paper_rsb:
            paper_winner = "tie"
        else:
            paper_winner = "RSB"
        lines.append(
            f"{cell.row:>10} {cell.n_parts:>3} | "
            f"{_fmt(cell.dknux):>7} {_fmt(cell.rsb):>7} {winner:>7} | "
            f"{_fmt(cell.paper_dknux):>11} {_fmt(cell.paper_rsb):>9} "
            f"{paper_winner:>12}"
        )
    lines.append("")
    lines.append(format_summary(result))
    return "\n".join(lines)


def format_summary(result: TableResult) -> str:
    """One-line shape summary for a table."""
    ours = result.ga_win_fraction
    paper_cells = [
        c
        for c in result.cells
        if c.paper_dknux is not None and c.paper_rsb is not None
    ]
    if paper_cells:
        paper = sum(c.paper_dknux <= c.paper_rsb for c in paper_cells) / len(
            paper_cells
        )
        return (
            f"DKNUX matches-or-beats RSB on {ours:.0%} of cells "
            f"(paper: {paper:.0%})"
        )
    return f"DKNUX matches-or-beats RSB on {ours:.0%} of cells"


def format_paper_comparison(results: list[TableResult]) -> str:
    """Aggregate shape comparison across several tables (EXPERIMENTS.md)."""
    lines = ["table      ours  paper   cells"]
    for result in results:
        paper_cells = [
            c
            for c in result.cells
            if c.paper_dknux is not None and c.paper_rsb is not None
        ]
        paper = (
            sum(c.paper_dknux <= c.paper_rsb for c in paper_cells)
            / len(paper_cells)
            if paper_cells
            else float("nan")
        )
        lines.append(
            f"{result.spec.table_id:<9} {result.ga_win_fraction:>5.0%} "
            f"{paper:>6.0%} {len(result.cells):>7}"
        )
    return "\n".join(lines)
