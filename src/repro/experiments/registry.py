"""Experiment registry: one spec per paper table/figure.

Each :class:`TableSpec` captures everything needed to regenerate a
table: the workloads (row labels), part counts, fitness function,
population seeding regime, and the reported metric.  The runner
(:mod:`repro.experiments.runner`) executes specs; the benchmark harness
and CLI look specs up here by id.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..errors import ExperimentError
from .paper_values import PAPER_TABLES, PaperCell

__all__ = ["TableSpec", "TABLE_SPECS", "get_spec", "list_specs"]


@dataclass(frozen=True)
class TableSpec:
    """Declarative description of one experiment table.

    Attributes
    ----------
    table_id:
        ``"table1"`` … ``"table6"``.
    title:
        Human-readable caption (matches the paper's).
    fitness_kind:
        ``"fitness1"`` (total communication) or ``"fitness2"`` (worst
        case).
    metric:
        ``"cut"`` (``sum C(q)/2``, Tables 1–3) or ``"worst_cut"``
        (``max C(q)``, Tables 4–6).
    seeding:
        ``"ibp"`` — population seeded with an IBP solution (Table 1);
        ``"rsb"`` — seeded with the RSB solution it tries to improve
        (Tables 2, 5); ``"random"`` — random balanced start (Table 4);
        ``"incremental"`` — extended from the previous partition of the
        base graph (Tables 3, 6).
    rows:
        Row labels: plain sizes (``"144"``) or incremental cases
        (``"118+21"``).
    parts:
        Part counts per row (columns of the table).
    """

    table_id: str
    title: str
    fitness_kind: str
    metric: str
    seeding: str
    rows: tuple[str, ...]
    parts: tuple[int, ...]

    def __post_init__(self) -> None:
        if self.fitness_kind not in ("fitness1", "fitness2"):
            raise ExperimentError(f"bad fitness_kind {self.fitness_kind!r}")
        if self.metric not in ("cut", "worst_cut"):
            raise ExperimentError(f"bad metric {self.metric!r}")
        if self.seeding not in ("ibp", "rsb", "random", "incremental"):
            raise ExperimentError(f"bad seeding {self.seeding!r}")
        if not self.rows or not self.parts:
            raise ExperimentError("spec needs at least one row and one part count")
        for row in self.rows:
            if self.seeding == "incremental" and "+" not in row:
                raise ExperimentError(
                    f"incremental spec row {row!r} must be 'base+added'"
                )

    def paper_cell(self, row: str, k: int) -> Optional[PaperCell]:
        """Published ``(dknux, rsb)`` values for a cell, if any."""
        return PAPER_TABLES.get(self.table_id, {}).get((row, k))

    @property
    def cells(self) -> list[tuple[str, int]]:
        return [(row, k) for row in self.rows for k in self.parts]


TABLE_SPECS: dict[str, TableSpec] = {
    "table1": TableSpec(
        table_id="table1",
        title="Best solutions: DKNUX (IBP-seeded) vs RSB, Fitness 1",
        fitness_kind="fitness1",
        metric="cut",
        seeding="ibp",
        rows=("167", "144"),
        parts=(2, 4, 8),
    ),
    "table2": TableSpec(
        table_id="table2",
        title="Improving RSB solutions with DKNUX, Fitness 1",
        fitness_kind="fitness1",
        metric="cut",
        seeding="rsb",
        rows=("139", "213", "243", "279"),
        parts=(2, 4, 8),
    ),
    "table3": TableSpec(
        table_id="table3",
        title="Incremental graph partitioning, Fitness 1",
        fitness_kind="fitness1",
        metric="cut",
        seeding="incremental",
        rows=("118+21", "118+41", "183+30", "183+60"),
        parts=(2, 4, 8),
    ),
    "table4": TableSpec(
        table_id="table4",
        title="Random initialization: DKNUX vs RSB, Fitness 2 (worst cut)",
        fitness_kind="fitness2",
        metric="worst_cut",
        seeding="random",
        rows=("78", "88", "98", "144", "167"),
        parts=(4, 8),
    ),
    "table5": TableSpec(
        table_id="table5",
        title="Improving RSB solutions with DKNUX, Fitness 2 (worst cut)",
        fitness_kind="fitness2",
        metric="worst_cut",
        seeding="rsb",
        rows=("78", "88", "98", "213", "243", "279", "309"),
        parts=(4, 8),
    ),
    "table6": TableSpec(
        table_id="table6",
        title="Incremental partitioning, Fitness 2 (worst cut)",
        fitness_kind="fitness2",
        metric="worst_cut",
        seeding="incremental",
        rows=(
            "78+10",
            "78+20",
            "118+21",
            "118+41",
            "183+30",
            "183+60",
            "249+30",
            "249+60",
        ),
        parts=(4, 8),
    ),
}


def get_spec(table_id: str) -> TableSpec:
    """Look up a spec by id (raises :class:`ExperimentError` if absent)."""
    try:
        return TABLE_SPECS[table_id]
    except KeyError:
        raise ExperimentError(
            f"unknown table {table_id!r}; available: {sorted(TABLE_SPECS)}"
        ) from None


def list_specs() -> list[str]:
    """All registered table ids, sorted."""
    return sorted(TABLE_SPECS)
