"""Vectorized boundary hill-climbing across the population axis.

:meth:`repro.ga.hillclimb.HillClimber._climb` migrates boundary nodes
one at a time; applied row-by-row to a ``(B, n)`` population it is a
Python loop over ``B × |frontier|`` tiny numpy operations and — after
the fast evaluation backend of PR 1 — the dominant cost of the GA inner
loop under ``hill_climb="all"``.

:func:`climb_batch` runs the *same* sequential scan in lockstep over
all rows at once.  The key observation is that the scalar climber's
per-pass scan order is a function of the node ids only (ascending over
the pass-start frontier), so every row that has node ``i`` on its
frontier examines ``i`` at the same point of the scan.  One pass then
becomes a loop over *nodes* instead of a loop over rows×nodes:

1. **Shared frontier gathers** — one ``(A, n)`` boundary mask for all
   active rows, built from a single cut-edge scatter per pass; the
   per-node active-row set is a column of this mask.
2. **Fused-index ``w_into`` tables** — for the rows examining node
   ``i``, the weight into each part is one ``np.bincount`` over
   ``row * k + label`` (the PR 1 kernel idiom from
   :mod:`repro.partition.metrics`), accumulating every row's neighbor
   weights in one C pass, in the same order as the scalar
   ``np.add.at`` and therefore bit-identically.
3. **Batched move deltas** — the Fitness1/Fitness2 gain of moving each
   row's node to every candidate part is an ``(R, k)`` matrix built
   from the maintained per-row loads/cuts tables; the scalar climber's
   ascending ``best_gain + 1e-12`` destination scan is replayed as a
   short loop over parts with per-row move masks.
4. **Chunking** — rows are independent, so the batch is processed in
   chunks sized to a scratch-memory budget; results are invariant to
   where chunk boundaries fall.

Every floating-point expression is evaluated with the same operations,
associativity and accumulation order as the scalar climber, so in
deterministic scan order (``rng=None``) the climbed assignments are
**bit-identical** to climbing each row with ``_climb`` — the
equivalence suite in ``tests/test_batch_climb.py`` asserts exactly
that, and ``benchmarks/check_bench.py`` guards the speedup.

With an ``rng``, the scalar climber shuffles each row's frontier
independently; a lockstep scan needs a *shared* order, so this module
instead draws one node permutation per pass (consumed up front, keeping
results independent of chunking) and scans it restricted to each row's
frontier.  The scan order is still uniformly random per pass — only the
RNG stream differs from the per-row form.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..errors import ConfigError
from ..graphs.csr import CSRGraph
from ..obs.hooks import kernel_probe
from ..partition.metrics import (
    _chunk_step,
    batch_part_cuts,
    batch_part_loads,
    check_population,
)
from .fitness import Fitness1, Fitness2, FitnessFunction

__all__ = ["climb_batch"]


def _boundary_mask(graph: CSRGraph, rows: np.ndarray) -> np.ndarray:
    """``(A, n)`` mask: node has >= 1 neighbor in another part, per row.

    Row ``r``'s True columns are exactly
    ``metrics.boundary_nodes(graph, rows[r])`` — the candidates the
    scalar climber scans — computed for all rows with one shared
    cut-edge gather.
    """
    a_rows, n = rows.shape
    m = graph.n_edges
    mask = np.zeros((a_rows, n), dtype=bool)
    if a_rows == 0 or m == 0:
        return mask
    eu, ev = graph.edges_u, graph.edges_v
    cut = rows[:, eu] != rows[:, ev]  # (A, m)
    sel = np.flatnonzero(cut.ravel())
    r_idx, e_idx = np.divmod(sel, m)
    mask[r_idx, eu[e_idx]] = True
    mask[r_idx, ev[e_idx]] = True
    return mask


@kernel_probe("climb_batch")
def climb_batch(
    graph: CSRGraph,
    fitness: FitnessFunction,
    population: np.ndarray,
    max_passes: int = 1,
    rng: Optional[np.random.Generator] = None,
    chunk_rows: Optional[int] = None,
) -> np.ndarray:
    """Hill-climb every row of ``(B, n)`` ``population``; returns the
    climbed copy (the input is not modified).

    ``rng=None`` scans boundary nodes in ascending order and is
    bit-identical to the scalar ``HillClimber._climb`` applied per row;
    with an ``rng``, one shared node permutation is drawn per pass (see
    the module docstring).  ``chunk_rows`` caps rows processed per
    lockstep sweep (default: sized to the metrics module's scratch
    budget); chunking never changes the result.
    """
    if not isinstance(fitness, (Fitness1, Fitness2)):
        raise ConfigError(
            "climb_batch supports Fitness1 and Fitness2, got "
            f"{type(fitness).__name__}"
        )
    pop = np.asarray(population, dtype=np.int64)
    out = check_population(graph, pop, fitness.n_parts).copy()
    b = out.shape[0]
    if b == 0 or graph.n_nodes == 0 or max_passes < 1:
        return out
    # one scan order per pass, drawn up front so the stream consumed is
    # a function of max_passes alone — not of chunking or convergence
    orders = (
        None
        if rng is None
        else [rng.permutation(graph.n_nodes) for _ in range(max_passes)]
    )
    step = _chunk_step(b, graph.n_nodes + 2 * graph.n_edges, chunk_rows)
    for start in range(0, b, step):
        _climb_chunk(graph, fitness, out[start : start + step], max_passes, orders)
    return out


def _climb_chunk(
    graph: CSRGraph,
    fitness: FitnessFunction,
    a: np.ndarray,
    max_passes: int,
    orders: Optional[list[np.ndarray]],
) -> None:
    """Lockstep-climb the ``(C, n)`` chunk ``a`` in place."""
    c_rows = a.shape[0]
    k = fitness.n_parts
    alpha = fitness.alpha
    is_f2 = isinstance(fitness, Fitness2)
    # maintained per-row tables, updated incrementally move by move —
    # exactly the scalar climber's ``loads``/``cuts`` state per row.
    # Fitness1 move decisions never read the cuts table (its Δcomm uses
    # only ``w_into``), so it is maintained for Fitness2 alone.
    loads = batch_part_loads(graph, a, k, validate=False)
    cuts = batch_part_cuts(graph, a, k, validate=False) if is_f2 else None
    avg = graph.total_node_weight() / k
    node_w = graph.node_weights
    indptr, indices, adj_w = graph.indptr, graph.indices, graph.adj_weights
    parts = np.arange(k)

    alive = np.arange(c_rows)  # rows that moved in the previous pass
    for pass_no in range(max_passes):
        fmask = _boundary_mask(graph, a[alive])  # (A, n)
        if orders is None:
            scan = np.flatnonzero(fmask.any(axis=0))
        else:
            order = orders[pass_no]
            scan = order[fmask[:, order].any(axis=0)]
        moved = np.zeros(alive.size, dtype=bool)
        for node in scan:
            sel = np.flatnonzero(fmask[:, node])
            rows = alive[sel]
            r = rows.size
            lo, hi = indptr[node], indptr[node + 1]
            nbrs = indices[lo:hi]
            wts = adj_w[lo:hi]
            s = a[rows, node]  # (R,) source part per row
            lbl = a[np.ix_(rows, nbrs)]  # (R, deg) neighbor labels
            fused = lbl + (np.arange(r, dtype=np.int64) * k)[:, None]
            w_into = np.bincount(
                fused.ravel(),
                weights=np.broadcast_to(wts, lbl.shape).ravel(),
                minlength=r * k,
            ).reshape(r, k)
            total_w = float(wts.sum())
            w_node = node_w[node]
            ridx = np.arange(r)
            loads_r = loads[rows]  # (R, k)
            loads_s = loads_r[ridx, s]  # (R,)
            w_into_s = w_into[ridx, s]
            dc_s = 2.0 * w_into_s - total_w

            # ΔI and ΔC for every (row, destination) pair; identical
            # expressions (and evaluation order) to the scalar climber
            t_src = (loads_s - w_node - avg) ** 2  # (R,)
            t_src_old = (loads_s - avg) ** 2
            t_dst = (loads_r + w_node - avg) ** 2  # (R, k)
            t_dst_old = (loads_r - avg) ** 2
            d_imb = (t_src[:, None] + t_dst) - t_src_old[:, None] - t_dst_old
            dc_d = total_w - 2.0 * w_into  # (R, k)
            if is_f2:
                cuts_r = cuts[rows]
                old_comm = np.maximum(cuts_r.max(axis=1), 0.0)  # (R,)
                new_s = cuts_r[ridx, s] + dc_s
                new_d = cuts_r + dc_d  # (R, k)
                # max over parts excluding {s, d}: mask s, then use the
                # top-2 of the remainder to exclude each candidate d
                wo_s = cuts_r.copy()
                wo_s[ridx, s] = -np.inf
                top1_idx = np.argmax(wo_s, axis=1)
                top1 = wo_s[ridx, top1_idx]
                wo_s[ridx, top1_idx] = -np.inf
                top2 = wo_s.max(axis=1)
                rest = np.where(
                    parts[None, :] == top1_idx[:, None],
                    top2[:, None],
                    top1[:, None],
                )
                rest = np.maximum(rest, 0.0)
                new_comm = np.maximum(np.maximum(rest, new_s[:, None]), new_d)
                d_comm = new_comm - old_comm[:, None]
            else:
                d_comm = dc_s[:, None] + dc_d
            gain = -(d_imb + alpha * d_comm)  # (R, k)

            # replay the scalar ascending destination scan: a candidate
            # wins only by beating the running best by > 1e-12
            valid = (w_into > 0) & (parts[None, :] != s[:, None])
            best_gain = np.zeros(r)
            best_dest = np.full(r, -1, dtype=np.int64)
            for d in range(k):
                win = valid[:, d] & (gain[:, d] > best_gain + 1e-12)
                if win.any():
                    best_gain[win] = gain[win, d]
                    best_dest[win] = d

            mv = best_dest >= 0
            if not mv.any():
                continue
            rr = rows[mv]
            rm = ridx[mv]
            sm = s[mv]
            dm = best_dest[mv]
            if is_f2:
                cuts[rr, sm] += dc_s[mv]
                cuts[rr, dm] += total_w - 2.0 * w_into[rm, dm]
            loads[rr, sm] -= w_node
            loads[rr, dm] += w_node
            a[rr, node] = dm
            moved[sel[mv]] = True
        alive = alive[moved]
        if alive.size == 0:
            break
