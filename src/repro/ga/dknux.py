"""DKNUX — Dynamic KNUX (Section 3.3 of the paper).

KNUX's solution quality depends on the quality of the static estimate
``I``.  DKNUX removes that dependence by *continually updating* the
estimate to the best solution found so far in the run: the history of
the genetic search itself supplies the domain knowledge.  Concretely,
the engine calls :meth:`DKNUX.prepare` once per generation with the
current population and fitness values; when a strictly better individual
has appeared, it becomes the new estimate and the neighbor-part count
table is rebuilt.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..graphs.csr import CSRGraph
from .knux import KNUX

__all__ = ["DKNUX"]


class DKNUX(KNUX):
    """Dynamic KNUX: the estimate partition tracks the best-so-far.

    Parameters
    ----------
    graph, n_parts:
        As for :class:`KNUX`.
    initial_estimate:
        Starting estimate ``I``.  If omitted, the first ``prepare`` call
        adopts the best individual of the initial population, which
        matches the paper's "current best solution" rule from generation
        zero.
    """

    name = "dknux"

    def __init__(
        self,
        graph: CSRGraph,
        n_parts: int,
        initial_estimate: Optional[np.ndarray] = None,
    ) -> None:
        if initial_estimate is None:
            # Defer table construction until the first prepare() call.
            self.graph = graph
            self.n_parts = int(n_parts)
            self._estimate = None
            self._counts = None
        else:
            super().__init__(graph, initial_estimate, n_parts)
        self._best_fitness: float = -np.inf

    @property
    def best_fitness_seen(self) -> float:
        """Fitness of the individual currently serving as the estimate."""
        return self._best_fitness

    def set_carried_estimate(
        self, assignment: np.ndarray, fitness: float
    ) -> None:
        """Adopt a known-good estimate *with* its fitness.

        ``initial_estimate`` alone is overwritten by the first
        :meth:`prepare` call (any population best beats ``-inf``); this
        seeds the best-seen fitness too, so the carried estimate only
        yields once the search genuinely improves on it.  Used by the
        incremental partitioner to carry the dynamic estimate across
        graph updates (the fitness must be the estimate's value on
        *this* graph, re-evaluated after extension).
        """
        self.set_estimate(assignment)
        self._best_fitness = float(fitness)

    def prepare(self, population: np.ndarray, fitness_values: np.ndarray) -> None:
        """Adopt the population's best individual if it improves on the
        best seen so far (or if no estimate exists yet)."""
        if population.shape[0] == 0:
            return
        idx = int(np.argmax(fitness_values))
        best = float(fitness_values[idx])
        if self._estimate is None or best > self._best_fitness:
            self.set_estimate(population[idx])
            self._best_fitness = best

    def cross(self, parents_a, parents_b, rng):
        if self._counts is None:
            raise RuntimeError(
                "DKNUX has no estimate yet; call prepare() with the initial "
                "population (the GA engine does this automatically) or pass "
                "initial_estimate"
            )
        return super().cross(parents_a, parents_b, rng)

    def __repr__(self) -> str:
        state = "unset" if self._estimate is None else f"best={self._best_fitness:g}"
        return f"DKNUX(n_parts={self.n_parts}, estimate={state})"
