"""Analysis utilities for GA run histories.

The paper's figures average best-fitness trajectories over 5 runs and
argue about convergence *speed*, not just final quality.  This module
provides the aggregation and speed metrics those figures need:
mean/min/max envelopes over repeated runs, generations-to-threshold,
and normalized area-under-curve, plus a multi-run driver.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Sequence

import numpy as np

from ..errors import ConfigError
from .history import GAHistory

__all__ = [
    "ConvergenceSummary",
    "aggregate_histories",
    "generations_to_reach",
    "normalized_auc",
    "repeat_runs",
]


@dataclass(frozen=True)
class ConvergenceSummary:
    """Aggregated best-fitness trajectories over repeated runs.

    All arrays have length = number of generations of the *shortest*
    run (runs stopped early by patience are truncated to the common
    prefix, which keeps the mean meaningful).
    """

    mean: np.ndarray
    min: np.ndarray
    max: np.ndarray
    std: np.ndarray
    n_runs: int
    final_best: float  # best final fitness over all runs

    @property
    def n_generations(self) -> int:
        return int(self.mean.shape[0])


def aggregate_histories(histories: Sequence[GAHistory]) -> ConvergenceSummary:
    """Mean/min/max/std envelope of best-fitness trajectories."""
    if not histories:
        raise ConfigError("need at least one history")
    curves = [np.asarray(h.best_fitness, dtype=float) for h in histories]
    if any(c.size == 0 for c in curves):
        raise ConfigError("history with no recorded generations")
    horizon = min(c.size for c in curves)
    block = np.vstack([c[:horizon] for c in curves])
    return ConvergenceSummary(
        mean=block.mean(axis=0),
        min=block.min(axis=0),
        max=block.max(axis=0),
        std=block.std(axis=0),
        n_runs=len(curves),
        final_best=float(max(c[-1] for c in curves)),
    )


def generations_to_reach(
    history: GAHistory, threshold: float
) -> Optional[int]:
    """First generation whose best fitness is >= ``threshold``.

    Returns ``None`` if the run never reached it.  This is the "speed"
    axis of the paper's orders-of-magnitude claim: compare the
    generation at which DKNUX crosses the fitness that 2-point crossover
    only reaches at the end of its budget.
    """
    best = np.asarray(history.best_fitness)
    hits = np.flatnonzero(best >= threshold)
    return int(hits[0]) if hits.size else None


def normalized_auc(history: GAHistory) -> float:
    """Area under the best-fitness curve, normalized to [0, 1].

    1.0 means the run sat at its final best from generation zero; lower
    values mean slower convergence.  Degenerate (flat) curves map to 1.0.
    """
    best = np.asarray(history.best_fitness, dtype=float)
    if best.size == 0:
        raise ConfigError("empty history")
    lo, hi = best.min(), best.max()
    if hi == lo:
        return 1.0
    scaled = (best - lo) / (hi - lo)
    return float(scaled.mean())


def repeat_runs(
    engine_factory: Callable[[int], "object"],
    n_runs: int,
    base_seed: int = 0,
) -> tuple[list, ConvergenceSummary]:
    """Run ``engine_factory(seed).run()`` ``n_runs`` times and aggregate.

    ``engine_factory`` receives a distinct integer seed per run and must
    return an object with a ``run()`` method returning a ``GAResult``.
    Returns ``(results, summary)``.
    """
    if n_runs < 1:
        raise ConfigError(f"n_runs must be >= 1, got {n_runs}")
    results = [engine_factory(base_seed + i).run() for i in range(n_runs)]
    summary = aggregate_histories([r.history for r in results])
    return results, summary
