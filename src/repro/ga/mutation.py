"""Mutation operators.

The paper uses plain point mutation at rate ``p_m = 0.01`` (each gene
independently reassigned to a random part).  We also provide *boundary
mutation*, a locality-aware variant that only relabels nodes currently
on a part boundary and only to a neighboring part — useful in ablations
to separate the contribution of KNUX from that of smarter mutation.
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigError
from ..graphs.csr import CSRGraph

__all__ = ["MutationOperator", "PointMutation", "BoundaryMutation"]


class MutationOperator:
    """Interface: mutate a ``(B, n)`` offspring batch in place-free style."""

    name = "abstract"

    def mutate(
        self, offspring: np.ndarray, rate: float, rng: np.random.Generator
    ) -> np.ndarray:
        raise NotImplementedError

    @staticmethod
    def _check_rate(rate: float) -> None:
        if not 0.0 <= rate <= 1.0:
            raise ConfigError(f"mutation rate must be in [0, 1], got {rate}")

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class PointMutation(MutationOperator):
    """Each gene independently replaced by a uniform random part label."""

    name = "point"

    def __init__(self, n_parts: int) -> None:
        if n_parts < 1:
            raise ConfigError(f"n_parts must be >= 1, got {n_parts}")
        self.n_parts = int(n_parts)

    def mutate(self, offspring, rate, rng):
        self._check_rate(rate)
        if rate == 0.0 or offspring.size == 0:
            return offspring.copy()
        mask = rng.random(offspring.shape) < rate
        randoms = rng.integers(0, self.n_parts, size=offspring.shape)
        return np.where(mask, randoms, offspring)


class BoundaryMutation(MutationOperator):
    """Relabel only boundary nodes, and only to a part already adjacent
    to them.

    For each selected gene ``i`` the new label is the part of a uniformly
    random neighbor of ``i`` — so interior nodes (all neighbors in the
    same part) are effectively immutable, and mutations never create
    isolated islands far from the part they join.
    """

    name = "boundary"

    def __init__(self, graph: CSRGraph) -> None:
        self.graph = graph
        # Pre-draw structure: for each node a slice of its CSR neighbors.
        self._indptr = graph.indptr
        self._indices = graph.indices

    def mutate(self, offspring, rate, rng):
        self._check_rate(rate)
        out = offspring.copy()
        if rate == 0.0 or offspring.size == 0:
            return out
        b, n = offspring.shape
        degrees = np.diff(self._indptr)
        mask = (rng.random((b, n)) < rate) & (degrees[None, :] > 0)
        rows, cols = np.nonzero(mask)
        if rows.size == 0:
            return out
        # Pick one random neighbor per mutated gene and adopt its part.
        offsets = (rng.random(rows.size) * degrees[cols]).astype(np.int64)
        nbrs = self._indices[self._indptr[cols] + offsets]
        out[rows, cols] = offspring[rows, nbrs]
        return out
