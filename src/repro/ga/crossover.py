"""Classical crossover operators: 1-point, 2-point, k-point, uniform.

These are the traditional operators (Section 3.2) that KNUX/DKNUX are
measured against.  Every operator is batched: it maps two parent
matrices of shape ``(B, n)`` to two child matrices of the same shape in
whole-array numpy, so an entire generation's recombinations happen in
one call.

All operators share the :class:`CrossoverOperator` interface, which also
carries the two hooks KNUX-style operators need:

* :meth:`prepare` — called once per generation with the current
  population and fitness before any pairing (DKNUX updates its estimate
  partition here);
* :meth:`cross` — the batched recombination itself.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..errors import ConfigError

__all__ = [
    "CrossoverOperator",
    "OnePointCrossover",
    "TwoPointCrossover",
    "KPointCrossover",
    "UniformCrossover",
]


class CrossoverOperator:
    """Interface for batched crossover operators."""

    #: short name used in configs and reports
    name: str = "abstract"

    def prepare(
        self,
        population: np.ndarray,
        fitness_values: np.ndarray,
    ) -> None:
        """Per-generation hook before pairing (default: no-op)."""

    def cross(
        self,
        parents_a: np.ndarray,
        parents_b: np.ndarray,
        rng: np.random.Generator,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Recombine ``(B, n)`` parent batches into two child batches."""
        raise NotImplementedError

    @staticmethod
    def _check(parents_a: np.ndarray, parents_b: np.ndarray) -> None:
        if parents_a.shape != parents_b.shape or parents_a.ndim != 2:
            raise ConfigError(
                f"parent batches must share a 2-D shape, got "
                f"{parents_a.shape} and {parents_b.shape}"
            )

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


def _mask_crossover(
    parents_a: np.ndarray, parents_b: np.ndarray, mask: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Children from a boolean inheritance mask (True → gene from parent a)."""
    child1 = np.where(mask, parents_a, parents_b)
    child2 = np.where(mask, parents_b, parents_a)
    return child1, child2


def _cutpoint_mask(
    batch: int, n: int, k: int, rng: np.random.Generator
) -> np.ndarray:
    """Inheritance mask for k-point crossover.

    For each pair, choose ``k`` distinct cut sites in ``1..n-1``; genes
    alternate parents between consecutive sites.  Implemented by marking
    the cut positions in a ``(B, n)`` indicator and taking a parity scan.
    """
    if n <= 1:
        return np.ones((batch, n), dtype=bool)
    k = min(k, n - 1)
    marks = np.zeros((batch, n), dtype=np.int64)
    # sample k distinct sites per row via argpartition of random keys
    keys = rng.random((batch, n - 1))
    sites = np.argpartition(keys, k - 1, axis=1)[:, :k] + 1  # in 1..n-1
    np.add.at(marks, (np.repeat(np.arange(batch), k), sites.ravel()), 1)
    parity = np.cumsum(marks, axis=1) % 2
    return parity == 0


class OnePointCrossover(CrossoverOperator):
    """Classic Holland one-point crossover: αβ × γδ → αδ, γβ."""

    name = "1-point"

    def cross(self, parents_a, parents_b, rng):
        self._check(parents_a, parents_b)
        b, n = parents_a.shape
        mask = _cutpoint_mask(b, n, 1, rng)
        return _mask_crossover(parents_a, parents_b, mask)


class TwoPointCrossover(CrossoverOperator):
    """Two-point crossover: αβγ × δεφ → αεγ, δβφ.

    This is the traditional operator the paper benchmarks KNUX/DKNUX
    against in its convergence figures.
    """

    name = "2-point"

    def cross(self, parents_a, parents_b, rng):
        self._check(parents_a, parents_b)
        b, n = parents_a.shape
        mask = _cutpoint_mask(b, n, 2, rng)
        return _mask_crossover(parents_a, parents_b, mask)


class KPointCrossover(CrossoverOperator):
    """General k-point crossover."""

    def __init__(self, k: int) -> None:
        if k < 1:
            raise ConfigError(f"k must be >= 1, got {k}")
        self.k = int(k)
        self.name = f"{k}-point"

    def cross(self, parents_a, parents_b, rng):
        self._check(parents_a, parents_b)
        b, n = parents_a.shape
        mask = _cutpoint_mask(b, n, self.k, rng)
        return _mask_crossover(parents_a, parents_b, mask)

    def __repr__(self) -> str:
        return f"KPointCrossover(k={self.k})"


class UniformCrossover(CrossoverOperator):
    """Syswerda's uniform crossover (UX): each gene from either parent
    with probability 0.5 — the special case of KNUX with all biases 0.5."""

    name = "uniform"

    def cross(self, parents_a, parents_b, rng):
        self._check(parents_a, parents_b)
        mask = rng.random(parents_a.shape) < 0.5
        return _mask_crossover(parents_a, parents_b, mask)
