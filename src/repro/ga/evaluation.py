"""Cached batch evaluation — the GA's evaluation-bookkeeping layer.

The GA spends essentially all of its time in
:meth:`FitnessFunction.evaluate_batch`, yet three structural facts make
many of the rows it is handed redundant: pairs that skip crossover
(rate ``1 - p_c``) clone their parents verbatim, point mutation leaves
most rows untouched at the paper's ``p_m = 0.01``, and hill-climbed
rows come back with their fitness already computed.  Because fitness
evaluation is a deterministic function of the row, a row identical to
an already-evaluated one *has* that row's fitness — no approximation is
involved in reusing it.

:class:`BatchEvaluator` exploits this: callers pass the fitness each
row inherited from its source individual plus a mask saying which rows
are verbatim copies, and only the changed rows are evaluated.  On top
of that mask-based (caller-declared) skipping, the evaluator can keep a
bounded **cross-generation memo** keyed by row content hash
(:func:`hash_rows`): a row that recurs generations later — a convergent
population re-discovering an earlier individual, or a DPGA migrant
whose fitness was computed on its source island — is answered from the
memo instead of re-evaluated.  The same hash function addresses the
partition service's content-addressed result cache, so a row and a
cached service result agree on identity by construction.

The evaluator is also the single point through which every fitness
value flows, which makes it the natural owner of two pieces of
bookkeeping the engine previously got wrong:

* the count of rows actually evaluated (``GAHistory.evaluations``
  under-reported hill-climb re-evaluations and over-reported cached
  clones);
* the best individual *ever evaluated* — under generational
  replacement with ``elite=0`` the best offspring could be dropped
  before the engine's post-replacement scan ever saw it.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from typing import Optional

import numpy as np

from ..errors import ConfigError
from .fitness import FitnessFunction

__all__ = ["BatchEvaluator", "hash_rows"]

#: digest width for row/content hashes; 16 bytes makes accidental
#: collisions (which would silently reuse the wrong fitness) a
#: ~2^-64-per-pair event — negligible against any realistic run length
_DIGEST_SIZE = 16


def hash_rows(population: np.ndarray) -> list[bytes]:
    """Content digest of every row of a ``(P, n)`` label matrix.

    Rows are canonicalized to contiguous ``int64`` before hashing, so
    the digest identifies the *assignment*, not its memory layout.
    Shared by the evaluator memo and the service's content-addressed
    caches (one identity function across the stack).
    """
    pop = np.ascontiguousarray(population, dtype=np.int64)
    if pop.ndim == 1:
        pop = pop[None, :]
    return [
        hashlib.blake2b(row.tobytes(), digest_size=_DIGEST_SIZE).digest()
        for row in pop
    ]


class BatchEvaluator:
    """Caching, counting, best-tracking wrapper around a fitness function.

    Parameters
    ----------
    fitness:
        The wrapped fitness function.
    memo_capacity:
        Maximum entries of the cross-generation row-hash memo; ``0``
        disables it (mask-based clone skipping still applies).  Reuse
        is exact — fitness is a deterministic function of the row — so
        enabling the memo changes evaluation *counts*, never values.

    Attributes
    ----------
    n_evaluations:
        Rows actually passed through the fitness function since the last
        :meth:`reset` — each evaluated row counts exactly once.
    memo_hits:
        Rows answered from the cross-generation memo (or deduplicated
        against an identical row in the same batch) since construction.
    best_fitness, best_assignment:
        The best individual ever evaluated (or observed), regardless of
        whether it survived replacement.
    """

    def __init__(self, fitness: FitnessFunction, memo_capacity: int = 0) -> None:
        if memo_capacity < 0:
            raise ConfigError(
                f"memo_capacity must be >= 0, got {memo_capacity}"
            )
        self.fitness = fitness
        self.memo_capacity = int(memo_capacity)
        self.n_evaluations: int = 0
        self.memo_hits: int = 0
        self.best_fitness: float = -np.inf
        self.best_assignment: Optional[np.ndarray] = None
        self._memo: "OrderedDict[bytes, float]" = OrderedDict()

    def reset(self) -> None:
        """Clear the best-so-far tracker and the evaluation counter.

        The cross-generation memo survives — cached fitness values stay
        exact across runs on the same graph, and a warm memo is the
        point of keeping engines alive between service requests.
        """
        self.n_evaluations = 0
        self.best_fitness = -np.inf
        self.best_assignment = None

    # ------------------------------------------------------------------
    def _memo_put(self, digest: bytes, value: float) -> None:
        memo = self._memo
        if digest in memo:
            memo.move_to_end(digest)
            return
        memo[digest] = value
        while len(memo) > self.memo_capacity:
            memo.popitem(last=False)

    def memoize(self, population: np.ndarray, fitness_values: np.ndarray) -> None:
        """Insert externally-known ``(row, fitness)`` pairs into the memo.

        Used for DPGA migrants: an individual evaluated on its source
        island arrives at the destination with its fitness attached, and
        memoizing it means the destination island never pays for rows it
        received for free.  No-op when the memo is disabled.
        """
        if self.memo_capacity == 0:
            return
        values = np.asarray(fitness_values, dtype=np.float64)
        for digest, value in zip(hash_rows(population), values):
            self._memo_put(digest, float(value))

    def evaluate(
        self,
        population: np.ndarray,
        known_fitness: Optional[np.ndarray] = None,
        known_mask: Optional[np.ndarray] = None,
    ) -> tuple[np.ndarray, int]:
        """Fitness of every row of ``(P, n)`` ``population``.

        ``known_mask[i]`` marks rows that are verbatim copies of an
        individual whose fitness is ``known_fitness[i]``; those rows are
        not re-evaluated.  Remaining rows consult the cross-generation
        memo (when enabled) and identical rows within the batch are
        evaluated once.  Returns ``(fitness_values, n_evaluated)`` where
        ``n_evaluated`` is the number of rows actually evaluated.
        """
        pop = np.asarray(population)
        p = pop.shape[0]
        if known_mask is None and self.memo_capacity == 0:
            # fast path: no mask, no memo — hand the matrix straight to
            # the kernel (fancy-indexing with arange would copy it)
            values = self.fitness.evaluate_batch(pop)
            self.observe(pop, values, evaluated=p)
            return values, p
        if known_mask is None:
            todo = np.arange(p)
            values = np.empty(p, dtype=np.float64)
        else:
            if known_fitness is None:
                raise ConfigError(
                    "known_mask requires known_fitness for the masked rows"
                )
            mask = np.asarray(known_mask, dtype=bool)
            values = np.array(known_fitness, dtype=np.float64, copy=True)
            todo = np.flatnonzero(~mask)
        evaluated = 0
        if todo.size:
            if self.memo_capacity == 0:
                if todo.size == p:  # all rows changed: skip the copy
                    values = self.fitness.evaluate_batch(pop)
                else:
                    values[todo] = self.fitness.evaluate_batch(pop[todo])
                evaluated = int(todo.size)
            else:
                evaluated = self._evaluate_memoized(pop, values, todo)
        self.observe(pop, values, evaluated=evaluated)
        return values, evaluated

    def _evaluate_memoized(
        self, pop: np.ndarray, values: np.ndarray, todo: np.ndarray
    ) -> int:
        """Fill ``values[todo]`` through the memo; returns rows evaluated."""
        digests = hash_rows(pop[todo])
        memo = self._memo
        fresh: list[int] = []  # positions within `todo` needing evaluation
        first_seen: dict[bytes, int] = {}  # digest -> row index of its leader
        dups: list[tuple[int, int]] = []  # (row index, leader row index)
        for i, digest in zip(todo, digests):
            cached = memo.get(digest)
            if cached is not None:
                memo.move_to_end(digest)
                values[i] = cached
                self.memo_hits += 1
            elif digest in first_seen:
                dups.append((int(i), first_seen[digest]))
                self.memo_hits += 1
            else:
                first_seen[digest] = int(i)
                fresh.append(int(i))
        if fresh:
            values[fresh] = self.fitness.evaluate_batch(pop[fresh])
            for digest, leader in first_seen.items():
                self._memo_put(digest, float(values[leader]))
        for i, leader in dups:
            values[i] = values[leader]
        return len(fresh)

    def observe(
        self,
        population: np.ndarray,
        fitness_values: np.ndarray,
        evaluated: int = 0,
    ) -> None:
        """Fold externally-evaluated rows into the tracker and counter.

        Used for rows whose fitness was computed outside this evaluator
        (e.g. the hill climber's batched evaluation); ``evaluated`` is
        how many of them should count toward ``n_evaluations``.
        """
        self.n_evaluations += int(evaluated)
        values = np.asarray(fitness_values, dtype=np.float64)
        if values.size == 0:
            return
        idx = int(np.argmax(values))
        if values[idx] > self.best_fitness:
            self.best_fitness = float(values[idx])
            self.best_assignment = np.array(
                np.asarray(population)[idx], dtype=np.int64, copy=True
            )
