"""Cached batch evaluation — the GA's evaluation-bookkeeping layer.

The GA spends essentially all of its time in
:meth:`FitnessFunction.evaluate_batch`, yet three structural facts make
many of the rows it is handed redundant: pairs that skip crossover
(rate ``1 - p_c``) clone their parents verbatim, point mutation leaves
most rows untouched at the paper's ``p_m = 0.01``, and hill-climbed
rows come back with their fitness already computed.  Because fitness
evaluation is a deterministic function of the row, a row identical to
an already-evaluated one *has* that row's fitness — no approximation is
involved in reusing it.

:class:`BatchEvaluator` exploits this: callers pass the fitness each
row inherited from its source individual plus a mask saying which rows
are verbatim copies, and only the changed rows are evaluated.  The
evaluator is also the single point through which every fitness value
flows, which makes it the natural owner of two pieces of bookkeeping
the engine previously got wrong:

* the count of rows actually evaluated (``GAHistory.evaluations``
  under-reported hill-climb re-evaluations and over-reported cached
  clones);
* the best individual *ever evaluated* — under generational
  replacement with ``elite=0`` the best offspring could be dropped
  before the engine's post-replacement scan ever saw it.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..errors import ConfigError
from .fitness import FitnessFunction

__all__ = ["BatchEvaluator"]


class BatchEvaluator:
    """Caching, counting, best-tracking wrapper around a fitness function.

    Attributes
    ----------
    n_evaluations:
        Rows actually passed through the fitness function since the last
        :meth:`reset` — each evaluated row counts exactly once.
    best_fitness, best_assignment:
        The best individual ever evaluated (or observed), regardless of
        whether it survived replacement.
    """

    def __init__(self, fitness: FitnessFunction) -> None:
        self.fitness = fitness
        self.n_evaluations: int = 0
        self.best_fitness: float = -np.inf
        self.best_assignment: Optional[np.ndarray] = None

    def reset(self) -> None:
        """Clear the best-so-far tracker and the evaluation counter."""
        self.n_evaluations = 0
        self.best_fitness = -np.inf
        self.best_assignment = None

    def evaluate(
        self,
        population: np.ndarray,
        known_fitness: Optional[np.ndarray] = None,
        known_mask: Optional[np.ndarray] = None,
    ) -> tuple[np.ndarray, int]:
        """Fitness of every row of ``(P, n)`` ``population``.

        ``known_mask[i]`` marks rows that are verbatim copies of an
        individual whose fitness is ``known_fitness[i]``; those rows are
        not re-evaluated.  Returns ``(fitness_values, n_evaluated)``
        where ``n_evaluated`` is the number of rows actually evaluated.
        """
        pop = np.asarray(population)
        p = pop.shape[0]
        if known_mask is None:
            values = self.fitness.evaluate_batch(pop)
            evaluated = p
        else:
            if known_fitness is None:
                raise ConfigError(
                    "known_mask requires known_fitness for the masked rows"
                )
            mask = np.asarray(known_mask, dtype=bool)
            todo = ~mask
            evaluated = int(np.count_nonzero(todo))
            if evaluated == p:
                values = self.fitness.evaluate_batch(pop)
            else:
                values = np.array(known_fitness, dtype=np.float64, copy=True)
                if evaluated:
                    values[todo] = self.fitness.evaluate_batch(pop[todo])
        self.observe(pop, values, evaluated=evaluated)
        return values, evaluated

    def observe(
        self,
        population: np.ndarray,
        fitness_values: np.ndarray,
        evaluated: int = 0,
    ) -> None:
        """Fold externally-evaluated rows into the tracker and counter.

        Used for rows whose fitness was computed outside this evaluator
        (e.g. the hill climber's batched evaluation); ``evaluated`` is
        how many of them should count toward ``n_evaluations``.
        """
        self.n_evaluations += int(evaluated)
        values = np.asarray(fitness_values, dtype=np.float64)
        if values.size == 0:
            return
        idx = int(np.argmax(values))
        if values[idx] > self.best_fitness:
            self.best_fitness = float(values[idx])
            self.best_assignment = np.array(
                np.asarray(population)[idx], dtype=np.int64, copy=True
            )
