"""Run-history recording for GA runs.

The paper's convergence figures plot best fitness against generation
averaged over runs; :class:`GAHistory` captures everything those plots
need (plus the cut-size trajectories the tables summarize).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

__all__ = ["GAHistory"]


class GAHistory:
    """Append-only per-generation statistics for one GA run."""

    def __init__(self) -> None:
        self.best_fitness: list[float] = []
        self.mean_fitness: list[float] = []
        self.worst_fitness: list[float] = []
        self.best_cut: list[float] = []
        self.best_worst_cut: list[float] = []
        self.n_evaluations: int = 0
        self.n_improvements: int = 0
        self._last_best: float = -np.inf

    def record(
        self,
        fitness_values: np.ndarray,
        best_cut: float,
        best_worst_cut: float,
        evaluations: int,
    ) -> None:
        """Append one generation's statistics."""
        best = float(fitness_values.max())
        self.best_fitness.append(best)
        self.mean_fitness.append(float(fitness_values.mean()))
        self.worst_fitness.append(float(fitness_values.min()))
        self.best_cut.append(float(best_cut))
        self.best_worst_cut.append(float(best_worst_cut))
        self.n_evaluations += int(evaluations)
        if best > self._last_best:
            self.n_improvements += 1
            self._last_best = best

    def add_evaluations(self, n: int) -> None:
        """Count ``n`` fitness evaluations made outside :meth:`record`
        (e.g. the engine's final hill-climb)."""
        self.n_evaluations += int(n)

    @property
    def n_generations(self) -> int:
        return len(self.best_fitness)

    def generations_since_improvement(self) -> int:
        """Generations elapsed since the best fitness last improved."""
        if not self.best_fitness:
            return 0
        best = self.best_fitness[-1]
        count = 0
        for value in reversed(self.best_fitness[:-1]):
            if value < best:
                break
            count += 1
        return count

    def as_arrays(self) -> dict[str, np.ndarray]:
        """Columnar view for plotting / aggregation."""
        return {
            "best_fitness": np.asarray(self.best_fitness),
            "mean_fitness": np.asarray(self.mean_fitness),
            "worst_fitness": np.asarray(self.worst_fitness),
            "best_cut": np.asarray(self.best_cut),
            "best_worst_cut": np.asarray(self.best_worst_cut),
        }

    def __repr__(self) -> str:
        if not self.best_fitness:
            return "GAHistory(empty)"
        return (
            f"GAHistory(generations={self.n_generations}, "
            f"best={self.best_fitness[-1]:g}, evals={self.n_evaluations})"
        )
