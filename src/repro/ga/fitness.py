"""The paper's two fitness functions (Section 2), fully vectorized.

With per-part load imbalance ``I(q)`` and communication cost ``C(q)``:

* ``Fitness1 = -(sum_q I(q) + alpha * sum_q C(q))`` — total communication;
* ``Fitness2 = -(sum_q I(q) + alpha * max_q C(q))`` — worst-case
  communication, non-differentiable in the assignment, which is exactly
  why the paper optimizes it with a GA.

Note ``sum_q C(q)`` counts every cut edge twice (once per endpoint part),
so it equals ``2 * cut_size``; the experiment tables report
``sum_q C(q) / 2`` i.e. plain cut size.  The paper's experiments use
``alpha = 1`` and unit node/edge weights; both generalizations are
supported here.

Fitness objects are stateless w.r.t. the population and carry
pre-gathered edge arrays so that batch evaluation of a whole population
is a few broadcast operations.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..errors import ConfigError
from ..graphs.csr import CSRGraph
from ..partition.metrics import (
    batch_load_imbalance,
    batch_max_part_cut,
    batch_part_cuts,
    check_population,
)

__all__ = ["FitnessFunction", "Fitness1", "Fitness2", "make_fitness"]


class FitnessFunction:
    """Base class: maximize ``evaluate``; higher is better.

    Subclasses implement :meth:`_communication_checked`; the public
    entry points validate the population once and share the checked
    kernels, so the reporting hooks can never diverge from what
    evaluation computes.
    """

    #: short name used by configs and experiment reports
    name: str = "abstract"

    def __init__(self, graph: CSRGraph, n_parts: int, alpha: float = 1.0) -> None:
        if n_parts < 1:
            raise ConfigError(f"n_parts must be >= 1, got {n_parts}")
        if alpha < 0:
            raise ConfigError(f"alpha must be non-negative, got {alpha}")
        self.graph = graph
        self.n_parts = int(n_parts)
        self.alpha = float(alpha)
        self._avg_load = graph.total_node_weight() / n_parts

    def evaluate_batch(self, population: np.ndarray) -> np.ndarray:
        """``(P,)`` fitness vector for a ``(P, n)`` population matrix.

        Validates the population once, then hands it to the subclass
        kernel — the batch metrics are told to skip their own (repeated)
        validation scans.
        """
        pop = check_population(self.graph, population, self.n_parts)
        return self._evaluate_checked(pop)

    def _evaluate_checked(self, population: np.ndarray) -> np.ndarray:
        """Fitness kernel over an already-validated population."""
        imb = self._imbalance_checked(population)
        comm = self._communication_checked(population)
        return -(imb + self.alpha * comm)

    def _imbalance_checked(self, population: np.ndarray) -> np.ndarray:
        return batch_load_imbalance(
            self.graph, population, self.n_parts, validate=False
        )

    def _communication_checked(self, population: np.ndarray) -> np.ndarray:
        """The communication term over an already-validated population."""
        raise NotImplementedError

    def evaluate(self, assignment: np.ndarray) -> float:
        """Fitness of a single assignment vector."""
        return float(self.evaluate_batch(np.asarray(assignment)[None, :])[0])

    # Components, exposed for reporting ---------------------------------
    def imbalance_batch(self, population: np.ndarray) -> np.ndarray:
        pop = check_population(self.graph, population, self.n_parts)
        return self._imbalance_checked(pop)

    def communication_batch(self, population: np.ndarray) -> np.ndarray:
        """The communication term this fitness penalizes (unscaled)."""
        pop = check_population(self.graph, population, self.n_parts)
        return self._communication_checked(pop)

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(n_parts={self.n_parts}, alpha={self.alpha})"
        )


class Fitness1(FitnessFunction):
    """Total-communication fitness: ``-(sum I(q) + alpha * sum C(q))``."""

    name = "fitness1"

    def _communication_checked(self, population: np.ndarray) -> np.ndarray:
        return batch_part_cuts(
            self.graph, population, self.n_parts, validate=False
        ).sum(axis=1)


class Fitness2(FitnessFunction):
    """Worst-case-communication fitness: ``-(sum I(q) + alpha * max C(q))``."""

    name = "fitness2"

    def _communication_checked(self, population: np.ndarray) -> np.ndarray:
        return batch_max_part_cut(
            self.graph, population, self.n_parts, validate=False
        )


def make_fitness(
    kind: str, graph: CSRGraph, n_parts: int, alpha: float = 1.0
) -> FitnessFunction:
    """Factory from a config string: ``"fitness1"`` or ``"fitness2"``."""
    table = {"fitness1": Fitness1, "fitness2": Fitness2}
    try:
        cls = table[kind.lower()]
    except KeyError:
        raise ConfigError(
            f"unknown fitness kind {kind!r}; expected one of {sorted(table)}"
        ) from None
    return cls(graph, n_parts, alpha=alpha)
