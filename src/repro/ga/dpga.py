"""DPGA — the coarse-grained distributed-population GA (Section 3.4).

Individuals are split across subpopulations ("islands"); crossover is
restricted to island members; every ``migration_interval`` generations
each island sends copies of its ``migration_size`` best individuals to
its topology neighbors, where they replace the worst residents.

The paper ran this on CM-5/Paragon-class machines; here the islands are
stepped round-robin in-process (deterministic given the seed), and
:mod:`repro.ga.parallel` adds an optional ``multiprocessing`` executor
for actual parallelism.  The migration semantics — what the result
depends on — are identical.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

from ..errors import ConfigError
from ..graphs.csr import CSRGraph
from ..partition.metrics import batch_cut_size, batch_max_part_cut
from ..partition.partition import Partition
from ..rng import SeedLike, seed_sequence
from .config import GAConfig
from .crossover import CrossoverOperator
from .engine import GAEngine, GAResult
from .fitness import FitnessFunction
from .history import GAHistory
from .population import random_population
from .topology import Topology, hypercube_topology

__all__ = ["DPGAConfig", "DPGAResult", "DPGA", "record_global_stats"]


def record_global_stats(
    graph: CSRGraph,
    n_parts: int,
    history: GAHistory,
    populations: list[np.ndarray],
    fitnesses: list[np.ndarray],
    evaluations: int,
) -> None:
    """Append one cross-island generation/epoch of stats to ``history``.

    Locates the best *current* individual over all islands and records
    its real cut metrics alongside the pooled fitness distribution —
    shared by the in-process :class:`DPGA` and the process-parallel
    :class:`repro.ga.parallel.ParallelDPGA` so their histories carry the
    same columns.
    """
    all_fit = np.concatenate(fitnesses)
    flat_idx = int(np.argmax(all_fit))
    sizes = np.cumsum([f.shape[0] for f in fitnesses])
    island = int(np.searchsorted(sizes, flat_idx, side="right"))
    local = flat_idx - (0 if island == 0 else sizes[island - 1])
    best = populations[island][local][None, :]
    history.record(
        all_fit,
        best_cut=float(batch_cut_size(graph, best)[0]),
        best_worst_cut=float(batch_max_part_cut(graph, best, n_parts)[0]),
        evaluations=evaluations,
    )


@dataclass(frozen=True)
class DPGAConfig:
    """Distributed-population parameters.

    ``total_population`` is divided evenly among islands (the paper's
    "total population size of 320" over 16 islands = 20 each).
    """

    total_population: int = 320
    n_islands: int = 16
    migration_interval: int = 5
    migration_size: int = 1
    max_generations: int = 300
    patience: Optional[int] = None

    def __post_init__(self) -> None:
        if self.n_islands < 1:
            raise ConfigError(f"n_islands must be >= 1, got {self.n_islands}")
        if self.total_population < 2 * self.n_islands:
            raise ConfigError(
                "total_population must give every island at least 2 "
                f"individuals; got {self.total_population} over "
                f"{self.n_islands} islands"
            )
        if self.migration_interval < 1:
            raise ConfigError(
                f"migration_interval must be >= 1, got {self.migration_interval}"
            )
        if self.migration_size < 1:
            raise ConfigError(
                f"migration_size must be >= 1, got {self.migration_size}"
            )
        if self.max_generations < 0:
            raise ConfigError(
                f"max_generations must be >= 0, got {self.max_generations}"
            )
        if self.patience is not None and self.patience < 1:
            raise ConfigError(f"patience must be >= 1, got {self.patience}")

    @property
    def island_population(self) -> int:
        return self.total_population // self.n_islands


@dataclass
class DPGAResult:
    """Outcome of a DPGA run."""

    best: Partition
    best_fitness: float
    history: GAHistory  # global best-of-all-islands trajectory
    island_histories: list[GAHistory]
    generations: int
    stopped_by: str

    @property
    def best_cut(self) -> float:
        return self.best.cut_size

    @property
    def best_worst_cut(self) -> float:
        return self.best.max_part_cut


class DPGA:
    """Island-model GA over a topology of subpopulations.

    Parameters
    ----------
    graph, fitness:
        As for :class:`GAEngine`.
    crossover_factory:
        Callable ``() -> CrossoverOperator`` building one operator *per
        island*.  Stateful operators (DKNUX) must not be shared between
        islands — each island's estimate evolves from its own history,
        which is what makes the model genuinely distributed.
    ga_config:
        Per-island engine settings; its ``population_size`` is overridden
        by ``dpga_config.island_population``.
    topology:
        Island connectivity; default is the paper's 4-D hypercube when
        ``n_islands`` is 16, else a ring.
    """

    def __init__(
        self,
        graph: CSRGraph,
        fitness: FitnessFunction,
        crossover_factory: Callable[[], CrossoverOperator],
        ga_config: Optional[GAConfig] = None,
        dpga_config: Optional[DPGAConfig] = None,
        topology: Optional[Topology] = None,
        seed: SeedLike = None,
    ) -> None:
        self.graph = graph
        self.fitness = fitness
        self.n_parts = fitness.n_parts
        self.dpga_config = dpga_config or DPGAConfig()
        cfg = ga_config or GAConfig()
        island_pop = self.dpga_config.island_population
        self.ga_config = cfg.with_updates(
            population_size=island_pop,
            elite=min(cfg.elite, island_pop),
            # per-island engines never stop on their own; the DPGA loop
            # owns the generation budget and stopping logic
            max_generations=0, patience=None, target_fitness=None,
        )
        n_isl = self.dpga_config.n_islands
        if topology is None:
            if n_isl == 16:
                topology = hypercube_topology(4)
            else:
                from .topology import ring_topology

                topology = ring_topology(n_isl)
        if topology.n_islands != n_isl:
            raise ConfigError(
                f"topology has {topology.n_islands} islands but config "
                f"says {n_isl}"
            )
        self.topology = topology
        seeds = seed_sequence(seed).spawn(n_isl + 1)
        self._rng = np.random.default_rng(seeds[-1])
        self.engines = [
            GAEngine(
                graph,
                fitness,
                crossover_factory(),
                config=self.ga_config,
                seed=np.random.default_rng(seeds[i]),
            )
            for i in range(n_isl)
        ]

    # ------------------------------------------------------------------
    def _migrate(
        self, populations: list[np.ndarray], fitnesses: list[np.ndarray]
    ) -> list[Optional[tuple[np.ndarray, np.ndarray]]]:
        """Copy each island's best individuals to its neighbors.

        All outgoing migrants are snapshotted before any island is
        modified, so migration is order-independent (synchronous
        exchange, like a bulk message round on the parallel machine).
        Returns the ``(rows, fitness)`` pair each island received (or
        ``None``), so the caller can memoize migrants into the
        destination island's evaluator — the migrant was evaluated on
        its source island, and re-deriving its fitness there would be
        pure waste.
        """
        k = self.dpga_config.migration_size
        migrants = []
        for pop, fit in zip(populations, fitnesses):
            idx = np.argsort(-fit, kind="stable")[:k]
            migrants.append((pop[idx].copy(), fit[idx].copy()))
        received: list[Optional[tuple[np.ndarray, np.ndarray]]] = []
        for island in range(self.topology.n_islands):
            incoming_pop = []
            incoming_fit = []
            for nbr in self.topology.neighbors(island):
                incoming_pop.append(migrants[nbr][0])
                incoming_fit.append(migrants[nbr][1])
            if not incoming_pop:
                received.append(None)
                continue
            inc_pop = np.vstack(incoming_pop)
            inc_fit = np.concatenate(incoming_fit)
            # replace the worst residents
            order = np.argsort(fitnesses[island], kind="stable")  # worst first
            worst = order[: inc_pop.shape[0]]
            populations[island][worst] = inc_pop
            fitnesses[island][worst] = inc_fit
            received.append((inc_pop, inc_fit))
        return received

    def run(
        self, initial_population: Optional[np.ndarray] = None
    ) -> DPGAResult:
        """Run all islands for the configured generation budget.

        ``initial_population`` (shape ``(total_population, n)`` or
        smaller) is dealt round-robin to islands, so a heuristic seed
        placed at row 0 reaches island 0 and spreads by migration.
        """
        cfg = self.dpga_config
        n_isl = cfg.n_islands
        island_pop = cfg.island_population

        populations: list[np.ndarray] = []
        if initial_population is not None:
            init = np.asarray(initial_population, dtype=np.int64)
            if init.ndim != 2 or init.shape[1] != self.graph.n_nodes:
                raise ConfigError(
                    f"initial population must have shape (P, {self.graph.n_nodes})"
                )
            shards: list[list[np.ndarray]] = [[] for _ in range(n_isl)]
            for row in range(min(init.shape[0], cfg.total_population)):
                shards[row % n_isl].append(init[row])
        else:
            shards = [[] for _ in range(n_isl)]
        for island in range(n_isl):
            have = (
                np.vstack(shards[island])
                if shards[island]
                else np.empty((0, self.graph.n_nodes), dtype=np.int64)
            )
            if have.shape[0] < island_pop:
                extra = random_population(
                    self.graph.n_nodes,
                    self.n_parts,
                    island_pop - have.shape[0],
                    seed=self.engines[island].rng,
                )
                have = np.vstack([have, extra]) if have.size else extra
            populations.append(have[:island_pop].copy())

        # Initial evaluation goes through each island engine's caching
        # evaluator so the best-ever trackers see every row from the
        # start (migrated copies were evaluated on their source island).
        for engine in self.engines:
            engine.evaluator.reset()
        fitnesses = [
            self.engines[island].evaluator.evaluate(populations[island])[0]
            for island in range(n_isl)
        ]
        history = GAHistory()
        island_histories = [GAHistory() for _ in range(n_isl)]
        best_fitness = -np.inf
        best_assignment = populations[0][0].copy()
        self._record_global(
            history, populations, fitnesses,
            sum(pop.shape[0] for pop in populations),
        )
        for island in range(n_isl):
            self.engines[island]._record(
                island_histories[island], populations[island],
                fitnesses[island], island_pop,
            )

        def _harvest() -> bool:
            """Pull best-ever-evaluated from the island trackers."""
            nonlocal best_fitness, best_assignment
            improved = False
            for engine in self.engines:
                tracker = engine.evaluator
                if (
                    tracker.best_assignment is not None
                    and tracker.best_fitness > best_fitness
                ):
                    best_fitness = float(tracker.best_fitness)
                    best_assignment = tracker.best_assignment.copy()
                    improved = True
            return improved

        _harvest()

        stopped_by = "max_generations"
        stale = 0
        for gen in range(1, cfg.max_generations + 1):
            gen_evals = 0
            for island in range(n_isl):
                populations[island], fitnesses[island], evals = self.engines[
                    island
                ].step(populations[island], fitnesses[island])
                gen_evals += evals
                self.engines[island]._record(
                    island_histories[island], populations[island],
                    fitnesses[island], evals,
                )
            if gen % cfg.migration_interval == 0:
                received = self._migrate(populations, fitnesses)
                for island, arrived in enumerate(received):
                    if arrived is not None:
                        self.engines[island].evaluator.memoize(*arrived)
            self._record_global(history, populations, fitnesses, gen_evals)
            improved = _harvest()
            stale = 0 if improved else stale + 1
            if cfg.patience is not None and stale >= cfg.patience:
                stopped_by = "patience"
                break

        best = Partition(self.graph, best_assignment, self.n_parts)
        return DPGAResult(
            best=best,
            best_fitness=best_fitness,
            history=history,
            island_histories=island_histories,
            generations=history.n_generations - 1,
            stopped_by=stopped_by,
        )

    def _record_global(
        self,
        history: GAHistory,
        populations: list[np.ndarray],
        fitnesses: list[np.ndarray],
        evaluations: int,
    ) -> None:
        record_global_stats(
            self.graph, self.n_parts, history, populations, fitnesses,
            evaluations,
        )
