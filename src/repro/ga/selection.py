"""Parent-selection and survivor-replacement strategies.

Fitness values in this library are non-positive (negated costs), so
roulette selection first shifts them to a positive scale; tournament and
rank selection are shift-invariant and are generally preferable.
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigError

__all__ = [
    "tournament_select",
    "roulette_select",
    "rank_select",
    "random_select",
    "make_selector",
    "plus_replacement",
    "generational_replacement",
]


def tournament_select(
    fitness: np.ndarray, n: int, rng: np.random.Generator, size: int = 2
) -> np.ndarray:
    """Indices of ``n`` winners of independent ``size``-way tournaments."""
    if size < 1:
        raise ConfigError(f"tournament size must be >= 1, got {size}")
    pop = fitness.shape[0]
    if pop == 0:
        raise ConfigError("cannot select from an empty population")
    entrants = rng.integers(0, pop, size=(n, size))
    winners = entrants[np.arange(n), np.argmax(fitness[entrants], axis=1)]
    return winners


def roulette_select(
    fitness: np.ndarray, n: int, rng: np.random.Generator
) -> np.ndarray:
    """Fitness-proportional selection on min-shifted fitness values.

    The classical Holland scheme.  After shifting so the worst individual
    has weight ~0, a small epsilon keeps the distribution proper when all
    fitness values are equal.
    """
    pop = fitness.shape[0]
    if pop == 0:
        raise ConfigError("cannot select from an empty population")
    shifted = fitness - fitness.min()
    total = shifted.sum()
    if total <= 0:
        probs = np.full(pop, 1.0 / pop)
    else:
        # epsilon floor so the worst individual is not strictly excluded
        probs = (shifted + total * 1e-9) / (total + pop * total * 1e-9)
        probs /= probs.sum()
    return rng.choice(pop, size=n, p=probs)


def rank_select(
    fitness: np.ndarray, n: int, rng: np.random.Generator
) -> np.ndarray:
    """Linear rank selection: weight proportional to 1 + rank (best = pop)."""
    pop = fitness.shape[0]
    if pop == 0:
        raise ConfigError("cannot select from an empty population")
    ranks = np.empty(pop, dtype=np.float64)
    ranks[np.argsort(fitness, kind="stable")] = np.arange(1, pop + 1)
    probs = ranks / ranks.sum()
    return rng.choice(pop, size=n, p=probs)


def random_select(
    fitness: np.ndarray, n: int, rng: np.random.Generator
) -> np.ndarray:
    """Uniform random parents (control strategy for ablations)."""
    pop = fitness.shape[0]
    if pop == 0:
        raise ConfigError("cannot select from an empty population")
    return rng.integers(0, pop, size=n)


def make_selector(kind: str, tournament_size: int = 2):
    """Factory: selection callable ``(fitness, n, rng) -> indices``."""
    kind = kind.lower()
    if kind == "tournament":
        return lambda fitness, n, rng: tournament_select(
            fitness, n, rng, size=tournament_size
        )
    if kind == "roulette":
        return roulette_select
    if kind == "rank":
        return rank_select
    if kind == "random":
        return random_select
    raise ConfigError(
        f"unknown selection kind {kind!r}; expected tournament, roulette, "
        "rank, or random"
    )


def plus_replacement(
    parents: np.ndarray,
    parent_fitness: np.ndarray,
    offspring: np.ndarray,
    offspring_fitness: np.ndarray,
    pop_size: int,
) -> tuple[np.ndarray, np.ndarray]:
    """(μ+λ) replacement: the best ``pop_size`` of parents ∪ offspring.

    Matches the paper's "selection ... from among parents and offspring".
    Ties break toward offspring (listed first) so fresh genetic material
    is preferred at equal fitness.
    """
    all_pop = np.vstack([offspring, parents])
    all_fit = np.concatenate([offspring_fitness, parent_fitness])
    order = np.argsort(-all_fit, kind="stable")[:pop_size]
    return all_pop[order], all_fit[order]


def generational_replacement(
    parents: np.ndarray,
    parent_fitness: np.ndarray,
    offspring: np.ndarray,
    offspring_fitness: np.ndarray,
    pop_size: int,
    elite: int = 1,
) -> tuple[np.ndarray, np.ndarray]:
    """Offspring replace the population, except ``elite`` parents survive.

    The next generation is the ``elite`` best parents plus the best
    ``pop_size - elite`` offspring.
    """
    if not 0 <= elite <= pop_size:
        raise ConfigError(f"elite must be in [0, {pop_size}], got {elite}")
    elite_idx = np.argsort(-parent_fitness, kind="stable")[:elite]
    child_idx = np.argsort(-offspring_fitness, kind="stable")[: pop_size - elite]
    new_pop = np.vstack([parents[elite_idx], offspring[child_idx]])
    new_fit = np.concatenate(
        [parent_fitness[elite_idx], offspring_fitness[child_idx]]
    )
    # Keep the population sorted best-first for cheap best-of queries.
    order = np.argsort(-new_fit, kind="stable")
    return new_pop[order], new_fit[order]
