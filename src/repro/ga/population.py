"""Population construction (Section 3.5 of the paper).

Three initialization regimes appear in the experiments:

* **random** — uniformly random balanced individuals (Table 4);
* **seeded** — the population contains a heuristic solution (IBP or RSB)
  plus perturbed copies of it (Tables 1, 2, 5);
* **incremental** — every individual extends the previous graph's
  partition, with the newly added nodes assigned randomly under the
  balance constraint (Tables 3, 6); see
  :func:`repro.incremental.seeding.seed_population_from_previous`.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..errors import ConfigError
from ..graphs.csr import CSRGraph
from ..partition.balance import random_balanced_assignment
from ..rng import SeedLike, as_generator

__all__ = ["random_population", "seeded_population"]


def random_population(
    n_nodes: int,
    n_parts: int,
    pop_size: int,
    seed: SeedLike = None,
    balanced: bool = True,
) -> np.ndarray:
    """``(pop_size, n_nodes)`` matrix of random individuals.

    With ``balanced=True`` (default) every individual has part sizes
    within one node of each other — random starts that are feasible
    w.r.t. the load-balance objective, which is how the paper's randomly
    initialized runs avoid wasting generations repairing gross imbalance.
    """
    if pop_size < 1:
        raise ConfigError(f"pop_size must be >= 1, got {pop_size}")
    if n_parts < 1:
        raise ConfigError(f"n_parts must be >= 1, got {n_parts}")
    rng = as_generator(seed)
    pop = np.empty((pop_size, n_nodes), dtype=np.int64)
    if balanced:
        base = np.arange(n_nodes) % n_parts
        for r in range(pop_size):
            pop[r] = rng.permutation(base)
    else:
        pop[:] = rng.integers(0, n_parts, size=(pop_size, n_nodes))
    return pop


def seeded_population(
    graph: CSRGraph,
    n_parts: int,
    pop_size: int,
    seed_assignment: np.ndarray,
    seed: SeedLike = None,
    exact_copies: int = 1,
    perturb_rate: float = 0.05,
    random_fraction: float = 0.25,
) -> np.ndarray:
    """Population built around a heuristic solution.

    Composition: ``exact_copies`` verbatim copies of the seed;
    ``random_fraction`` of the population fully random balanced
    individuals (diversity reserve); the remainder are copies of the
    seed with each gene independently replaced by the part of a random
    graph-neighbor with probability ``perturb_rate`` — local jitter that
    explores the seed's neighborhood without destroying its structure.
    """
    if pop_size < 1:
        raise ConfigError(f"pop_size must be >= 1, got {pop_size}")
    if not 0 <= exact_copies <= pop_size:
        raise ConfigError(
            f"exact_copies must be in [0, {pop_size}], got {exact_copies}"
        )
    if not 0.0 <= perturb_rate <= 1.0:
        raise ConfigError(f"perturb_rate must be in [0, 1], got {perturb_rate}")
    if not 0.0 <= random_fraction <= 1.0:
        raise ConfigError(
            f"random_fraction must be in [0, 1], got {random_fraction}"
        )
    base = np.asarray(seed_assignment, dtype=np.int64)
    if base.shape != (graph.n_nodes,):
        raise ConfigError("seed assignment length mismatch")
    if base.size and (base.min() < 0 or base.max() >= n_parts):
        raise ConfigError(f"seed labels out of range [0, {n_parts})")

    rng = as_generator(seed)
    n_random = min(int(round(random_fraction * pop_size)), pop_size - exact_copies)
    n_perturbed = pop_size - exact_copies - n_random

    rows = [np.tile(base, (exact_copies, 1))] if exact_copies else []
    if n_perturbed:
        block = np.tile(base, (n_perturbed, 1))
        degrees = np.diff(graph.indptr)
        mask = (rng.random(block.shape) < perturb_rate) & (degrees[None, :] > 0)
        rr, cc = np.nonzero(mask)
        if rr.size:
            offsets = (rng.random(rr.size) * degrees[cc]).astype(np.int64)
            nbrs = graph.indices[graph.indptr[cc] + offsets]
            block[rr, cc] = base[nbrs]
        rows.append(block)
    if n_random:
        rows.append(
            random_population(graph.n_nodes, n_parts, n_random, seed=rng)
        )
    return np.vstack(rows) if rows else np.empty((0, graph.n_nodes), dtype=np.int64)
