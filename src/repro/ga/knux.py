"""KNUX — Knowledge-based Non-Uniform Crossover (Section 3.2 of the paper).

KNUX generalizes uniform crossover with a per-gene bias probability
vector ``p``.  For graph partitioning the bias comes from a heuristic
*estimate partition* ``I``: with ``#(i, X, I)`` the number of graph
neighbors of node ``i`` that ``I`` places in the part ``X_i``,

    p_i = 0.5                                   if #(i,a,I) = #(i,b,I) = 0
    p_i = #(i,a,I) / (#(i,a,I) + #(i,b,I))      otherwise

and the child takes gene ``i`` from parent ``a`` with probability
``p_i`` (genes on which parents agree are inherited directly).  The
estimate thus pulls offspring toward assignments that are locally
consistent with a known-good partition — the "domain-specific knowledge"
the paper credits for its orders-of-magnitude speedup over 2-point
crossover.

The key data structure is the *neighbor-part count table*
``T[i, q] = sum of w(i,j) over neighbors j with I[j] = q`` (shape
``(n, k)``), built once per estimate in one vectorized scatter-add and
then consulted by every crossover with two gathers.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..errors import ConfigError
from ..graphs.csr import CSRGraph
from .crossover import CrossoverOperator, _mask_crossover

__all__ = ["neighbor_part_counts", "knux_bias", "KNUX"]


def neighbor_part_counts(
    graph: CSRGraph, estimate: np.ndarray, n_parts: int
) -> np.ndarray:
    """``(n, k)`` table of edge weight from each node into each part of
    the estimate partition.

    ``T[i, q] = sum_{j in Γ(i), estimate[j] = q} w_e(i, j)``; with unit
    edge weights this is exactly the paper's neighbor count ``#(i, ·, I)``.
    """
    est = np.asarray(estimate)
    if est.shape != (graph.n_nodes,):
        raise ConfigError(
            f"estimate length {est.shape} != graph nodes {graph.n_nodes}"
        )
    if est.size and (est.min() < 0 or est.max() >= n_parts):
        raise ConfigError(f"estimate labels out of range [0, {n_parts})")
    counts = np.zeros((graph.n_nodes, n_parts))
    np.add.at(counts, (graph.edges_u, est[graph.edges_v]), graph.edge_weights)
    np.add.at(counts, (graph.edges_v, est[graph.edges_u]), graph.edge_weights)
    return counts


def knux_bias(
    counts: np.ndarray, parents_a: np.ndarray, parents_b: np.ndarray
) -> np.ndarray:
    """Bias matrix ``p`` of shape ``(B, n)`` for parent batches.

    ``p[r, i]`` is the probability that child ``r`` inherits gene ``i``
    from parent ``a``; rows follow the paper's formula with the 0/0 case
    mapped to 0.5.
    """
    gene_idx = np.arange(parents_a.shape[1])[None, :]
    na = counts[gene_idx, parents_a]  # #(i, a, I), gathered per pair
    nb = counts[gene_idx, parents_b]
    denom = na + nb
    with np.errstate(invalid="ignore", divide="ignore"):
        p = np.where(denom > 0, na / np.where(denom > 0, denom, 1.0), 0.5)
    return p


class KNUX(CrossoverOperator):
    """Knowledge-based Non-Uniform Crossover with a *static* estimate.

    Parameters
    ----------
    graph:
        The graph being partitioned (supplies the neighborhood structure).
    estimate:
        The heuristic estimate partition ``I`` — e.g. an IBP or RSB
        solution (Section 3.5 of the paper).
    n_parts:
        Number of parts ``k``.
    """

    name = "knux"

    def __init__(
        self, graph: CSRGraph, estimate: np.ndarray, n_parts: int
    ) -> None:
        self.graph = graph
        self.n_parts = int(n_parts)
        self._estimate: Optional[np.ndarray] = None
        self._counts: Optional[np.ndarray] = None
        self.set_estimate(estimate)

    @property
    def estimate(self) -> np.ndarray:
        """The current estimate partition ``I`` (read-only copy)."""
        assert self._estimate is not None
        return self._estimate.copy()

    def set_estimate(self, estimate: np.ndarray) -> None:
        """Replace the estimate and rebuild the neighbor-count table."""
        est = np.asarray(estimate, dtype=np.int64).copy()
        self._counts = neighbor_part_counts(self.graph, est, self.n_parts)
        self._estimate = est

    def bias(self, parents_a: np.ndarray, parents_b: np.ndarray) -> np.ndarray:
        """Expose the bias matrix (useful for tests and analysis)."""
        assert self._counts is not None
        return knux_bias(self._counts, parents_a, parents_b)

    def cross(self, parents_a, parents_b, rng):
        self._check(parents_a, parents_b)
        p = self.bias(parents_a, parents_b)
        draw = rng.random(parents_a.shape)
        # Gene from parent a where the biased coin says so; agreement
        # positions are unaffected because both choices coincide.
        mask = draw < p
        return _mask_crossover(parents_a, parents_b, mask)

    def __repr__(self) -> str:
        return f"KNUX(n_parts={self.n_parts}, n_nodes={self.graph.n_nodes})"
