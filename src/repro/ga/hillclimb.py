"""Boundary hill-climbing (Section 3.6 of the paper).

Only "boundary points" — nodes with at least one neighbor in another
part — are examined; each is migrated to the neighboring part that most
improves fitness, if any.  Passes repeat until a fixed point or the pass
budget is exhausted, so the result is a local optimum of the fitness
under single-node moves.

The move deltas are computed incrementally from two maintained arrays,
the per-part loads ``L`` and per-part boundary costs ``C``.  Moving node
``i`` (incident weight ``T``, weight ``W_q`` into each part ``q``) from
part ``s`` to ``d`` changes only ``C(s)`` and ``C(d)``::

    ΔC(s) = 2 W_s - T        (internal edges become cut, old cut edges leave)
    ΔC(d) = T - 2 W_d

which gives O(degree + k) per candidate move instead of re-evaluating
the whole partition.

Batched delta formulation
-------------------------
:meth:`HillClimber.improve_batch` dispatches to
:func:`repro.ga.batch_climb.climb_batch`, which runs the same greedy
scan in lockstep over all ``B`` rows of a population.  Per pass it
keeps ``(B, k)`` tables of the loads ``L`` and boundary costs ``C`` and
a shared ``(B, n)`` frontier mask; per scanned node ``i`` it forms the
``(R, k)`` table ``W[r, q]`` — row ``r``'s weight from ``i`` into part
``q`` — with one fused-index bincount over ``row * k + label``, and the
move deltas become whole-array expressions over that table::

    ΔI(r, d) = (L[r,s]-w_i-W̄)² + (L[r,d]+w_i-W̄)² - (L[r,s]-W̄)² - (L[r,d]-W̄)²
    ΔC(r, s) = 2 W[r,s] - T_i,   ΔC(r, d) = T_i - 2 W[r,d]

with Fitness2's worst-part term obtained from the per-row top-2 of
``C`` excluding ``{s, d}``.  The destination choice and the move itself
are applied through per-row masks, so one pass costs O(scanned nodes)
vectorized steps instead of O(B × frontier) Python iterations, while
remaining bit-identical to this module's scalar ``_climb`` in
deterministic scan order.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..errors import ConfigError
from ..graphs.csr import CSRGraph
from ..partition.metrics import boundary_nodes, part_cuts, part_loads
from .batch_climb import climb_batch
from .fitness import Fitness1, Fitness2, FitnessFunction

__all__ = ["HillClimber"]


class HillClimber:
    """Greedy single-node-migration local search for either fitness.

    Parameters
    ----------
    graph:
        Graph being partitioned.
    fitness:
        A :class:`Fitness1` or :class:`Fitness2` instance; determines
        whether the communication delta uses the total or the worst-part
        formulation.
    """

    def __init__(self, graph: CSRGraph, fitness: FitnessFunction) -> None:
        if not isinstance(fitness, (Fitness1, Fitness2)):
            raise ConfigError(
                "HillClimber supports Fitness1 and Fitness2, got "
                f"{type(fitness).__name__}"
            )
        self.graph = graph
        self.fitness = fitness
        self.n_parts = fitness.n_parts

    # ------------------------------------------------------------------
    def improve(
        self,
        assignment: np.ndarray,
        max_passes: int = 5,
        rng: Optional[np.random.Generator] = None,
    ) -> tuple[np.ndarray, float]:
        """Return ``(improved_assignment, its_fitness)``.

        ``rng`` randomizes the scan order over boundary nodes (a fixed
        order biases which local optimum is reached); ``None`` keeps the
        deterministic ascending order.
        """
        a = self._climb(assignment, max_passes, rng)
        return a, self.fitness.evaluate(a)

    def _climb(
        self,
        assignment: np.ndarray,
        max_passes: int,
        rng: Optional[np.random.Generator],
    ) -> np.ndarray:
        """Greedy migration passes; returns the climbed assignment only.

        This scalar form is the reference implementation the vectorized
        :func:`~repro.ga.batch_climb.climb_batch` must match bit-for-bit
        in deterministic scan order (asserted by the equivalence suite
        and the perf guard); it remains the fast path for single rows,
        where per-node numpy-scalar arithmetic beats whole-array
        dispatch overhead.
        """
        graph, k = self.graph, self.n_parts
        alpha = self.fitness.alpha
        a = np.asarray(assignment, dtype=np.int64).copy()
        loads = part_loads(graph, a, k)
        cuts = part_cuts(graph, a, k)
        avg = graph.total_node_weight() / k
        is_f2 = isinstance(self.fitness, Fitness2)

        for _ in range(max_passes):
            moved = False
            frontier = boundary_nodes(graph, a)
            if rng is not None:
                frontier = frontier.copy()
                rng.shuffle(frontier)
            for node in frontier:
                s = a[node]
                nbrs = graph.neighbors(node)
                wts = graph.neighbor_weights(node)
                w_into = np.zeros(k)
                np.add.at(w_into, a[nbrs], wts)
                total_w = float(wts.sum())
                w_node = graph.node_weights[node]

                # candidate destinations: parts adjacent to this node
                dests = np.flatnonzero(w_into > 0)
                best_gain = 0.0
                best_dest = -1
                for d in dests:
                    if d == s:
                        continue
                    d_imb = (
                        (loads[s] - w_node - avg) ** 2
                        + (loads[d] + w_node - avg) ** 2
                        - (loads[s] - avg) ** 2
                        - (loads[d] - avg) ** 2
                    )
                    dc_s = 2.0 * w_into[s] - total_w
                    dc_d = total_w - 2.0 * w_into[d]
                    if is_f2:
                        old_comm = cuts.max(initial=0.0)
                        new_s, new_d = cuts[s] + dc_s, cuts[d] + dc_d
                        rest = np.delete(cuts, [s, d]).max(initial=0.0)
                        new_comm = max(rest, new_s, new_d)
                        d_comm = new_comm - old_comm
                    else:
                        d_comm = dc_s + dc_d
                    gain = -(d_imb + alpha * d_comm)
                    if gain > best_gain + 1e-12:
                        best_gain = gain
                        best_dest = int(d)
                if best_dest >= 0:
                    d = best_dest
                    cuts[s] += 2.0 * w_into[s] - total_w
                    cuts[d] += total_w - 2.0 * w_into[d]
                    loads[s] -= w_node
                    loads[d] += w_node
                    a[node] = d
                    moved = True
            if not moved:
                break
        return a

    def improve_batch(
        self,
        population: np.ndarray,
        max_passes: int = 1,
        rng: Optional[np.random.Generator] = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Hill-climb every row of a ``(B, n)`` batch, vectorized.

        Dispatches to :func:`repro.ga.batch_climb.climb_batch`, which
        climbs all rows in lockstep; with ``rng=None`` the result is
        bit-identical to climbing each row with :meth:`_climb` (with an
        ``rng`` the scan order is a shared per-pass permutation instead
        of a per-row shuffle — see that module's docstring).

        Returns ``(improved, fitness)`` where ``fitness`` comes from one
        batched evaluation of the climbed rows — callers should reuse it
        instead of re-evaluating the batch (which is what the engine
        used to do, doubling the per-generation evaluation cost under
        ``hill_climb="all"``).
        """
        out = climb_batch(
            self.graph, self.fitness, population, max_passes=max_passes, rng=rng
        )
        return out, self.fitness.evaluate_batch(out)
