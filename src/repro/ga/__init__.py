"""Genetic algorithm core: fitness, operators (KNUX/DKNUX), engine, DPGA."""

from .config import (
    GAConfig,
    PAPER_CROSSOVER_RATE,
    PAPER_MUTATION_RATE,
    PAPER_POPULATION,
)
from .fitness import Fitness1, Fitness2, FitnessFunction, make_fitness
from .evaluation import BatchEvaluator, hash_rows
from .crossover import (
    CrossoverOperator,
    KPointCrossover,
    OnePointCrossover,
    TwoPointCrossover,
    UniformCrossover,
)
from .knux import KNUX, knux_bias, neighbor_part_counts
from .dknux import DKNUX
from .mutation import BoundaryMutation, MutationOperator, PointMutation
from .selection import (
    generational_replacement,
    make_selector,
    plus_replacement,
    rank_select,
    random_select,
    roulette_select,
    tournament_select,
)
from .batch_climb import climb_batch
from .hillclimb import HillClimber
from .population import random_population, seeded_population
from .history import GAHistory
from .engine import GAEngine, GAResult
from .analysis import (
    ConvergenceSummary,
    aggregate_histories,
    generations_to_reach,
    normalized_auc,
    repeat_runs,
)
from .topology import (
    Topology,
    hypercube_topology,
    make_topology,
    mesh_topology,
    ring_topology,
)
from .dpga import DPGA, DPGAConfig, DPGAResult
from .parallel import CROSSOVER_KINDS, ParallelDPGA, PinnedExecutors

__all__ = [
    "GAConfig",
    "PAPER_CROSSOVER_RATE",
    "PAPER_MUTATION_RATE",
    "PAPER_POPULATION",
    "BatchEvaluator",
    "hash_rows",
    "Fitness1",
    "Fitness2",
    "FitnessFunction",
    "make_fitness",
    "CrossoverOperator",
    "KPointCrossover",
    "OnePointCrossover",
    "TwoPointCrossover",
    "UniformCrossover",
    "KNUX",
    "knux_bias",
    "neighbor_part_counts",
    "DKNUX",
    "BoundaryMutation",
    "MutationOperator",
    "PointMutation",
    "generational_replacement",
    "make_selector",
    "plus_replacement",
    "rank_select",
    "random_select",
    "roulette_select",
    "tournament_select",
    "HillClimber",
    "climb_batch",
    "random_population",
    "seeded_population",
    "GAHistory",
    "GAEngine",
    "GAResult",
    "ConvergenceSummary",
    "aggregate_histories",
    "generations_to_reach",
    "normalized_auc",
    "repeat_runs",
    "Topology",
    "hypercube_topology",
    "make_topology",
    "mesh_topology",
    "ring_topology",
    "DPGA",
    "DPGAConfig",
    "DPGAResult",
    "CROSSOVER_KINDS",
    "ParallelDPGA",
    "PinnedExecutors",
]
