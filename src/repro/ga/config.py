"""GA configuration.

Defaults match the paper's experimental setup (Section 4): total
population 320, crossover rate 0.7, mutation rate 0.01.  The engine's
generation budget is the only knob the paper leaves unstated; 300 is a
reasonable envelope for its few-hundred-node graphs.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

from ..errors import ConfigError

__all__ = ["GAConfig", "PAPER_POPULATION", "PAPER_CROSSOVER_RATE", "PAPER_MUTATION_RATE"]

#: The paper's experimental constants.
PAPER_POPULATION = 320
PAPER_CROSSOVER_RATE = 0.7
PAPER_MUTATION_RATE = 0.01


@dataclass(frozen=True)
class GAConfig:
    """Hyper-parameters for :class:`repro.ga.engine.GAEngine`.

    Attributes
    ----------
    population_size:
        Number of individuals (paper: 320 total across all islands).
    crossover_rate:
        Probability ``p_c`` that a selected pair recombines (paper: 0.7);
        non-recombined pairs contribute verbatim copies.
    mutation_rate:
        Per-gene mutation probability ``p_m`` (paper: 0.01).
    max_generations:
        Hard generation budget.
    patience:
        Stop early after this many generations without improvement of
        the best fitness (``None`` disables early stopping).
    target_fitness:
        Stop as soon as the best fitness reaches this value.
    selection:
        Parent selection: ``"tournament"``, ``"roulette"``, ``"rank"``,
        or ``"random"``.
    tournament_size:
        Entrants per tournament when ``selection="tournament"``.
    replacement:
        Survivor strategy: ``"plus"`` ((μ+λ): best of parents ∪
        offspring — the paper's description) or ``"generational"``
        (offspring replace all but ``elite`` parents).
    elite:
        Parents guaranteed survival under generational replacement.
    hill_climb:
        ``"off"``, ``"best"`` (climb the best offspring each
        generation), ``"all"`` (climb every offspring — expensive), or
        ``"final"`` (one climb of the final best individual).
    hill_climb_passes:
        Sweep budget per hill-climbing invocation.
    mutation:
        ``"point"`` (paper) or ``"boundary"`` (locality-aware variant).
    eval_memo:
        Capacity of the engine evaluator's cross-generation row-hash
        memo (see :class:`repro.ga.evaluation.BatchEvaluator`); rows
        identical to previously evaluated ones — late-run convergent
        populations, DPGA migrants — reuse their exact fitness instead
        of being re-evaluated.  ``0`` disables the memo.  Fitness values
        and search trajectories are bit-identical either way; only the
        evaluation *count* drops.
    """

    population_size: int = PAPER_POPULATION
    crossover_rate: float = PAPER_CROSSOVER_RATE
    mutation_rate: float = PAPER_MUTATION_RATE
    max_generations: int = 300
    patience: Optional[int] = None
    target_fitness: Optional[float] = None
    selection: str = "tournament"
    tournament_size: int = 2
    replacement: str = "plus"
    elite: int = 2
    hill_climb: str = "off"
    hill_climb_passes: int = 2
    mutation: str = "point"
    eval_memo: int = 4096

    def __post_init__(self) -> None:
        if self.population_size < 2:
            raise ConfigError(
                f"population_size must be >= 2, got {self.population_size}"
            )
        if not 0.0 <= self.crossover_rate <= 1.0:
            raise ConfigError(
                f"crossover_rate must be in [0, 1], got {self.crossover_rate}"
            )
        if not 0.0 <= self.mutation_rate <= 1.0:
            raise ConfigError(
                f"mutation_rate must be in [0, 1], got {self.mutation_rate}"
            )
        if self.max_generations < 0:
            raise ConfigError(
                f"max_generations must be >= 0, got {self.max_generations}"
            )
        if self.patience is not None and self.patience < 1:
            raise ConfigError(f"patience must be >= 1, got {self.patience}")
        if self.selection not in ("tournament", "roulette", "rank", "random"):
            raise ConfigError(f"unknown selection {self.selection!r}")
        if self.tournament_size < 1:
            raise ConfigError(
                f"tournament_size must be >= 1, got {self.tournament_size}"
            )
        if self.replacement not in ("plus", "generational"):
            raise ConfigError(f"unknown replacement {self.replacement!r}")
        if not 0 <= self.elite <= self.population_size:
            raise ConfigError(
                f"elite must be in [0, population_size], got {self.elite}"
            )
        if self.hill_climb not in ("off", "best", "all", "final"):
            raise ConfigError(f"unknown hill_climb mode {self.hill_climb!r}")
        if self.hill_climb_passes < 1:
            raise ConfigError(
                f"hill_climb_passes must be >= 1, got {self.hill_climb_passes}"
            )
        if self.mutation not in ("point", "boundary"):
            raise ConfigError(f"unknown mutation kind {self.mutation!r}")
        if self.eval_memo < 0:
            raise ConfigError(
                f"eval_memo must be >= 0, got {self.eval_memo}"
            )

    def with_updates(self, **kwargs) -> "GAConfig":
        """Functional update (the dataclass is frozen)."""
        return replace(self, **kwargs)

    @classmethod
    def paper(cls, **overrides) -> "GAConfig":
        """The paper's exact experimental constants, plus overrides."""
        base = dict(
            population_size=PAPER_POPULATION,
            crossover_rate=PAPER_CROSSOVER_RATE,
            mutation_rate=PAPER_MUTATION_RATE,
        )
        base.update(overrides)
        return cls(**base)
