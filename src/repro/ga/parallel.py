"""Process-parallel execution of the distributed-population GA.

The paper's DPGA maps one subpopulation per processor of a
distributed-memory machine (CM-5 / Paragon) and reports near-linear
speedups.  Without MPI available here, this module provides the closest
laptop equivalent: islands stepped in a ``multiprocessing`` pool, with
migration performed by the coordinating process between epochs.  One
epoch = ``migration_interval`` generations of isolated evolution, which
is exactly the communication pattern of the paper's model (islands only
interact at migration points), so the search dynamics are identical to
:class:`repro.ga.dpga.DPGA` up to RNG stream interleaving.

Worker processes build their engine once (per island) from a compact
spec and keep it cached, so per-epoch IPC is just the population matrix.
Because an engine carries state that evolves across epochs — its RNG
stream, DKNUX's dynamic estimate, the evaluator's best-ever tracker —
the runner offers two ways to keep that state consistent, selected by
``pool_mode``:

* ``"pinned"`` — every island is pinned to one single-process executor
  for the whole run (island ``i`` always runs on pool ``i %
  n_workers``), so its engine state simply lives where the island
  runs.  An unpinned shared pool *without* state shipping would
  rebuild an island's engine from scratch whenever scheduling moved it,
  making same-seed results depend on n_workers and on OS scheduling.
* ``"shared"`` — one :class:`~concurrent.futures.ProcessPoolExecutor`
  of ``n_workers`` processes, with the evolving engine state
  **explicitly shipped** with every epoch task (RNG bit-generator
  state, DKNUX estimate + its fitness, best-ever individual) and
  restored onto whichever process picks the island up.  Same-seed
  results are bit-identical to pinned mode — the state round-trips
  exactly — at the cost of a few extra KB of IPC per island-epoch.

``pool_mode="auto"`` (the default) picks pinned up to
:data:`SHARED_POOL_CUTOFF` worker slots and shared beyond.  Measured
(``benchmarks/bench_parallel_fanout.py``, 24 islands × 2 epochs on a
60-node mesh): each pinned slot is a whole ``ProcessPoolExecutor`` —
one OS process plus a management thread and pipe pair — so bank
construction and teardown grow linearly with the slot count and come
to dominate: end-to-end the shared pool matches pinned at 4 workers
(1.0x), and is 1.5x faster at 16 and 2.0x faster at 24.  Pinned keeps
the edge for long runs at small-to-moderate widths, where its setup
amortizes and per-island evaluator-memo affinity pays every epoch —
hence the cutoff at 16.  Same-seed search results are identical for
any ``n_workers`` in *both* modes, so the cutoff is pure performance
policy.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from concurrent.futures import Future, ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass
from typing import Callable, Optional, Union

import numpy as np

from ..errors import ConfigError
from ..graphs.csr import CSRGraph
from ..partition.partition import Partition
from ..rng import SeedLike, seed_sequence
from .config import GAConfig
from .crossover import TwoPointCrossover, UniformCrossover
from .dknux import DKNUX
from .dpga import DPGAConfig, DPGAResult, record_global_stats
from .engine import GAEngine
from .fitness import make_fitness
from .history import GAHistory
from .knux import KNUX
from .population import random_population
from .topology import Topology, hypercube_topology, ring_topology

__all__ = [
    "ParallelDPGA",
    "PinnedExecutors",
    "CROSSOVER_KINDS",
    "POOL_MODES",
    "SHARED_POOL_CUTOFF",
]

#: crossover kinds the parallel runner can reconstruct in workers
CROSSOVER_KINDS = ("2-point", "uniform", "knux", "dknux")

#: pool execution strategies (see the module docstring)
POOL_MODES = ("auto", "pinned", "shared")

#: ``pool_mode="auto"`` switches from per-island pinned executors to
#: one shared pool with explicit state shipping above this many worker
#: slots — the executor-bank setup/teardown cost grows linearly with
#: the slot count while the shared pool's is flat (measured in
#: ``benchmarks/bench_parallel_fanout.py``)
SHARED_POOL_CUTOFF = 16


class PinnedExecutors:
    """A bank of single-worker executors with stable key→slot pinning.

    Stateful computations (an island engine's RNG stream and DKNUX
    estimate, a service session's warm partitioner, a worker's per-graph
    engine cache) must keep living in *one* worker across submissions —
    a shared pool that migrates work between workers silently rebuilds
    that state and makes results depend on scheduling.  This class owns
    ``n_slots`` executors of one worker each and routes every submission
    for the same key to the same slot: integer keys map by modulo (the
    island pinning of :class:`ParallelDPGA`), other hashables map
    through a stable content digest (the partition service pins jobs by
    graph digest and sessions by id).

    ``kind="process"`` gives process isolation with an optional
    ``initializer`` (engine caches built once per worker);
    ``kind="thread"`` gives cheap in-process pinning for workloads that
    release the GIL (numpy kernels) or need to share objects with the
    coordinator.
    """

    def __init__(
        self,
        n_slots: int,
        kind: str = "process",
        initializer: Optional[Callable] = None,
        initargs: tuple = (),
    ) -> None:
        if n_slots < 1:
            raise ConfigError(f"n_slots must be >= 1, got {n_slots}")
        if kind not in ("process", "thread"):
            raise ConfigError(
                f"kind must be 'process' or 'thread', got {kind!r}"
            )
        self.n_slots = int(n_slots)
        self.kind = kind
        self._executors: list[Union[ProcessPoolExecutor, ThreadPoolExecutor]] = []
        for _ in range(self.n_slots):
            if kind == "process":
                self._executors.append(
                    ProcessPoolExecutor(
                        max_workers=1,
                        initializer=initializer,
                        initargs=initargs,
                    )
                )
            else:
                executor = ThreadPoolExecutor(max_workers=1)
                if initializer is not None:
                    executor.submit(initializer, *initargs).result()
                self._executors.append(executor)

    def slot(self, key) -> int:
        """Stable slot index for ``key`` (same key → same slot, always)."""
        if isinstance(key, (int, np.integer)):
            return int(key) % self.n_slots
        if isinstance(key, bytes):
            raw = key
        else:
            raw = str(key).encode()
        digest = hashlib.blake2b(raw, digest_size=8).digest()
        return int.from_bytes(digest, "big") % self.n_slots

    def submit(self, key, fn, /, *args, **kwargs) -> Future:
        """Submit ``fn(*args, **kwargs)`` to the slot pinned to ``key``."""
        return self._executors[self.slot(key)].submit(fn, *args, **kwargs)

    def shutdown(self, wait: bool = True) -> None:
        for executor in self._executors:
            executor.shutdown(wait=wait)

    def __enter__(self) -> "PinnedExecutors":
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()


@dataclass(frozen=True)
class _EngineSpec:
    """Picklable recipe for rebuilding an island engine in a worker."""

    n_nodes: int
    edges_u: np.ndarray
    edges_v: np.ndarray
    edge_weights: np.ndarray
    node_weights: np.ndarray
    fitness_kind: str
    n_parts: int
    alpha: float
    crossover_kind: str
    knux_estimate: Optional[np.ndarray]
    ga_config: GAConfig
    island_entropy: tuple[int, ...]


_WORKER_ENGINES: "OrderedDict[int, GAEngine]" = OrderedDict()
_WORKER_SPEC: Optional[_EngineSpec] = None

#: shared-pool engine-cache cap per worker process.  Pinned mode hosts
#: only a process's own islands, so its cache is naturally bounded; a
#: shared worker may execute *any* island each epoch, and without a cap
#: every process would eventually hold an engine (fitness tables, DKNUX
#: counts, evaluator memo) for every island.  Eviction is harmless in
#: shared mode — the authoritative state ships with each task.
_WORKER_ENGINE_CAP = 4


def _init_worker(spec: _EngineSpec) -> None:
    global _WORKER_SPEC
    _WORKER_SPEC = spec
    _WORKER_ENGINES.clear()


def _get_engine(island: int) -> GAEngine:
    spec = _WORKER_SPEC
    assert spec is not None, "worker not initialized"
    engine = _WORKER_ENGINES.get(island)
    if engine is None:
        graph = CSRGraph(
            spec.n_nodes,
            spec.edges_u,
            spec.edges_v,
            spec.edge_weights,
            spec.node_weights,
        )
        fitness = make_fitness(spec.fitness_kind, graph, spec.n_parts, spec.alpha)
        kind = spec.crossover_kind
        if kind == "2-point":
            crossover = TwoPointCrossover()
        elif kind == "uniform":
            crossover = UniformCrossover()
        elif kind == "knux":
            if spec.knux_estimate is None:
                raise ConfigError("knux crossover needs knux_estimate")
            crossover = KNUX(graph, spec.knux_estimate, spec.n_parts)
        elif kind == "dknux":
            crossover = DKNUX(graph, spec.n_parts)
        else:
            raise ConfigError(f"unknown crossover kind {kind!r}")
        rng = np.random.default_rng(
            np.random.SeedSequence(spec.island_entropy).spawn(island + 1)[island]
        )
        engine = GAEngine(graph, fitness, crossover, config=spec.ga_config, seed=rng)
        _WORKER_ENGINES[island] = engine
    return engine


def _capture_engine_state(engine: GAEngine) -> dict:
    """The picklable evolving state of an island engine (everything a
    fresh rebuild would lose): RNG stream, DKNUX dynamic estimate with
    its fitness, and the evaluator's best-ever individual.  The
    evaluator's row-hash memo is deliberately not shipped — it only
    affects evaluation *counts*, never values (exact-value cache on a
    fixed graph), and it is the bulkiest piece."""
    state: dict = {"rng": engine.rng.bit_generator.state}
    cross = engine.crossover
    if isinstance(cross, DKNUX):
        est = cross._estimate
        state["dknux_estimate"] = None if est is None else np.asarray(est)
        state["dknux_fitness"] = float(cross._best_fitness)
    tracker = engine.evaluator
    state["best_assignment"] = (
        None
        if tracker.best_assignment is None
        else np.asarray(tracker.best_assignment)
    )
    state["best_fitness"] = float(tracker.best_fitness)
    return state


def _restore_engine_state(engine: GAEngine, state: dict) -> None:
    """Install shipped state onto a (possibly rebuilt) island engine.

    Exact inverse of :func:`_capture_engine_state`: the RNG state dict
    round-trips bit-exactly, the DKNUX count table is a deterministic
    function of the estimate, and the best-ever tracker is re-observed
    with zero evaluation cost."""
    engine.rng.bit_generator.state = state["rng"]
    cross = engine.crossover
    if isinstance(cross, DKNUX) and state.get("dknux_estimate") is not None:
        cross.set_carried_estimate(
            state["dknux_estimate"], state["dknux_fitness"]
        )
    tracker = engine.evaluator
    tracker.best_fitness = -np.inf
    tracker.best_assignment = None
    if state["best_assignment"] is not None:
        tracker.observe(
            state["best_assignment"][None, :],
            np.array([state["best_fitness"]]),
            evaluated=0,
        )


def _run_epoch_shipped(
    island: int,
    population: np.ndarray,
    fitness_values: np.ndarray,
    n_gens: int,
    migrants: Optional[tuple[np.ndarray, np.ndarray]],
    state: Optional[dict],
) -> tuple[int, np.ndarray, np.ndarray, int, Optional[np.ndarray], float, dict]:
    """Shared-pool epoch step: like :func:`_run_epoch`, but the island's
    evolving engine state arrives with the task (``None`` on the first
    epoch, when the engine's fresh build *is* the canonical state) and
    the updated state returns with the result, so the island may run on
    a different process next epoch without losing anything."""
    engine = _get_engine(island)
    _WORKER_ENGINES.move_to_end(island)
    while len(_WORKER_ENGINES) > _WORKER_ENGINE_CAP:
        _WORKER_ENGINES.popitem(last=False)
    if state is not None:
        _restore_engine_state(engine, state)
    if migrants is not None:
        engine.evaluator.memoize(*migrants)
    evals = 0
    for _ in range(n_gens):
        population, fitness_values, e = engine.step(population, fitness_values)
        evals += e
    tracker = engine.evaluator
    return (
        island,
        population,
        fitness_values,
        evals,
        tracker.best_assignment,
        float(tracker.best_fitness),
        _capture_engine_state(engine),
    )


def _run_epoch(
    island: int,
    population: np.ndarray,
    fitness_values: np.ndarray,
    n_gens: int,
    migrants: Optional[tuple[np.ndarray, np.ndarray]] = None,
) -> tuple[int, np.ndarray, np.ndarray, int, Optional[np.ndarray], float]:
    """Step one island for an epoch; also ship the engine evaluator's
    best-ever individual so offspring dropped at replacement still reach
    the coordinator's harvest.  ``migrants`` is the ``(rows, fitness)``
    the coordinator migrated into this island since the last epoch —
    memoized into the island evaluator so rows evaluated on their source
    island are never re-evaluated here."""
    engine = _get_engine(island)
    if migrants is not None:
        engine.evaluator.memoize(*migrants)
    evals = 0
    for _ in range(n_gens):
        population, fitness_values, e = engine.step(population, fitness_values)
        evals += e
    tracker = engine.evaluator
    return (
        island,
        population,
        fitness_values,
        evals,
        tracker.best_assignment,
        float(tracker.best_fitness),
    )


class ParallelDPGA:
    """DPGA over a process pool (pinned or shared — see module docstring).

    Parameters mirror :class:`repro.ga.dpga.DPGA` except the crossover
    operator is named by ``crossover_kind`` (one of
    :data:`CROSSOVER_KINDS`) so it can be rebuilt inside workers, and
    ``pool_mode`` selects the execution strategy (one of
    :data:`POOL_MODES`).

    Same-seed runs produce identical search results (populations,
    fitness values, best partition) for any ``n_workers`` and either
    pool mode: pinned islands keep their engine state in place, shared
    pools ship it explicitly.  Only the *evaluation counters* may
    differ between modes — an island hopping processes in shared mode
    starts with a cold evaluator memo, so it re-pays evaluations the
    pinned memo would have cached (values are unaffected by
    construction).
    """

    def __init__(
        self,
        graph: CSRGraph,
        fitness_kind: str,
        n_parts: int,
        crossover_kind: str = "dknux",
        alpha: float = 1.0,
        knux_estimate: Optional[np.ndarray] = None,
        ga_config: Optional[GAConfig] = None,
        dpga_config: Optional[DPGAConfig] = None,
        topology: Optional[Topology] = None,
        n_workers: int = 4,
        seed: SeedLike = None,
        pool_mode: str = "auto",
    ) -> None:
        if crossover_kind not in CROSSOVER_KINDS:
            raise ConfigError(
                f"crossover_kind must be one of {CROSSOVER_KINDS}, got "
                f"{crossover_kind!r}"
            )
        if n_workers < 1:
            raise ConfigError(f"n_workers must be >= 1, got {n_workers}")
        if pool_mode not in POOL_MODES:
            raise ConfigError(
                f"pool_mode must be one of {POOL_MODES}, got {pool_mode!r}"
            )
        self.pool_mode = pool_mode
        self.graph = graph
        self.n_parts = int(n_parts)
        self.fitness = make_fitness(fitness_kind, graph, n_parts, alpha)
        self.dpga_config = dpga_config or DPGAConfig()
        cfg = ga_config or GAConfig()
        self.ga_config = cfg.with_updates(
            population_size=self.dpga_config.island_population,
            elite=min(cfg.elite, self.dpga_config.island_population),
            max_generations=0,
            patience=None,
            target_fitness=None,
        )
        n_isl = self.dpga_config.n_islands
        if topology is None:
            topology = (
                hypercube_topology(4) if n_isl == 16 else ring_topology(n_isl)
            )
        if topology.n_islands != n_isl:
            raise ConfigError("topology size does not match n_islands")
        self.topology = topology
        self.n_workers = int(n_workers)
        seq = seed_sequence(seed)
        self._rng = np.random.default_rng(seq.spawn(1)[0])
        self._spec = _EngineSpec(
            n_nodes=graph.n_nodes,
            edges_u=np.asarray(graph.edges_u),
            edges_v=np.asarray(graph.edges_v),
            edge_weights=np.asarray(graph.edge_weights),
            node_weights=np.asarray(graph.node_weights),
            fitness_kind=fitness_kind,
            n_parts=self.n_parts,
            alpha=float(alpha),
            crossover_kind=crossover_kind,
            knux_estimate=None if knux_estimate is None else np.asarray(knux_estimate),
            ga_config=self.ga_config,
            island_entropy=tuple(int(x) for x in seq.generate_state(4)),
        )

    def run(self, initial_population: Optional[np.ndarray] = None) -> DPGAResult:
        """Run the epoch/migrate loop across the process pool."""
        cfg = self.dpga_config
        n_isl = cfg.n_islands
        island_pop = cfg.island_population

        populations: list[np.ndarray] = []
        offset = 0
        init = (
            None
            if initial_population is None
            else np.asarray(initial_population, dtype=np.int64)
        )
        for island in range(n_isl):
            if init is not None and offset < init.shape[0]:
                take = init[offset : offset + island_pop]
                offset += take.shape[0]
            else:
                take = np.empty((0, self.graph.n_nodes), dtype=np.int64)
            if take.shape[0] < island_pop:
                extra = random_population(
                    self.graph.n_nodes,
                    self.n_parts,
                    island_pop - take.shape[0],
                    seed=self._rng,
                )
                take = np.vstack([take, extra]) if take.size else extra
            populations.append(take.copy())
        fitnesses = [self.fitness.evaluate_batch(p) for p in populations]

        history = GAHistory()
        best_fitness = -np.inf
        best_assignment = populations[0][0].copy()

        def harvest() -> None:
            nonlocal best_fitness, best_assignment
            for island in range(n_isl):
                idx = int(np.argmax(fitnesses[island]))
                if fitnesses[island][idx] > best_fitness:
                    best_fitness = float(fitnesses[island][idx])
                    best_assignment = populations[island][idx].copy()

        harvest()
        epochs = max(cfg.max_generations // cfg.migration_interval, 0)
        # Pinned mode: one single-worker executor per slot — island i
        # always runs on slot i % n_pools, so its engine (RNG stream,
        # DKNUX estimate, best-ever tracker) lives in exactly one
        # process for the whole run.  Shared mode: one pool of n_pools
        # workers, with that same engine state explicitly shipped with
        # every epoch task and restored wherever the island lands.
        # Either way same-seed results cannot depend on scheduling.
        n_pools = min(self.n_workers, n_isl)
        mode = self.pool_mode
        if mode == "auto":
            mode = "pinned" if n_pools <= SHARED_POOL_CUTOFF else "shared"
        pools: Optional[PinnedExecutors] = None
        shared: Optional[ProcessPoolExecutor] = None
        received: list[Optional[tuple[np.ndarray, np.ndarray]]] = [
            None
        ] * n_isl
        states: list[Optional[dict]] = [None] * n_isl
        try:
            if epochs > 0 and mode == "pinned":
                pools = PinnedExecutors(
                    n_pools,
                    kind="process",
                    initializer=_init_worker,
                    initargs=(self._spec,),
                )
            elif epochs > 0:
                shared = ProcessPoolExecutor(
                    max_workers=n_pools,
                    initializer=_init_worker,
                    initargs=(self._spec,),
                )
            for _ in range(epochs):
                if mode == "pinned":
                    futures = [
                        pools.submit(
                            island,
                            _run_epoch,
                            island,
                            populations[island],
                            fitnesses[island],
                            cfg.migration_interval,
                            received[island],
                        )
                        for island in range(n_isl)
                    ]
                else:
                    futures = [
                        shared.submit(
                            _run_epoch_shipped,
                            island,
                            populations[island],
                            fitnesses[island],
                            cfg.migration_interval,
                            received[island],
                            states[island],
                        )
                        for island in range(n_isl)
                    ]
                total_evals = 0
                for fut in futures:
                    out = fut.result()
                    island, pop, fit, evals, epoch_best, epoch_best_fit = out[:6]
                    if mode == "shared":
                        states[island] = out[6]
                    populations[island] = pop
                    fitnesses[island] = fit
                    total_evals += evals
                    if epoch_best is not None and epoch_best_fit > best_fitness:
                        best_fitness = epoch_best_fit
                        best_assignment = epoch_best.copy()
                received = self._migrate(populations, fitnesses)
                record_global_stats(
                    self.graph, self.n_parts, history,
                    populations, fitnesses, total_evals,
                )
                harvest()
        finally:
            if pools is not None:
                pools.shutdown()
            if shared is not None:
                shared.shutdown()

        best = Partition(self.graph, best_assignment, self.n_parts)
        return DPGAResult(
            best=best,
            best_fitness=best_fitness,
            history=history,
            island_histories=[],
            generations=epochs * cfg.migration_interval,
            stopped_by="max_generations",
        )

    def _migrate(
        self, populations: list[np.ndarray], fitnesses: list[np.ndarray]
    ) -> list[Optional[tuple[np.ndarray, np.ndarray]]]:
        """Synchronous migration round; returns what each island received
        so the next epoch can memoize migrants into the island's
        (worker-resident) evaluator instead of re-evaluating them."""
        k = self.dpga_config.migration_size
        migrants = []
        for pop, fit in zip(populations, fitnesses):
            idx = np.argsort(-fit, kind="stable")[:k]
            migrants.append((pop[idx].copy(), fit[idx].copy()))
        received: list[Optional[tuple[np.ndarray, np.ndarray]]] = []
        for island in range(self.topology.n_islands):
            inc_pop = [migrants[n][0] for n in self.topology.neighbors(island)]
            inc_fit = [migrants[n][1] for n in self.topology.neighbors(island)]
            if not inc_pop:
                received.append(None)
                continue
            inc_pop_arr = np.vstack(inc_pop)
            inc_fit_arr = np.concatenate(inc_fit)
            worst = np.argsort(fitnesses[island], kind="stable")[: inc_pop_arr.shape[0]]
            populations[island][worst] = inc_pop_arr
            fitnesses[island][worst] = inc_fit_arr
            received.append((inc_pop_arr, inc_fit_arr))
        return received
