"""The generational GA engine (Section 3 of the paper).

One :class:`GAEngine` owns a graph, a fitness function, a crossover
operator, and a :class:`GAConfig`, and runs the loop::

    evaluate → (operator.prepare) → select parents → crossover →
    mutate → [hill-climb] → evaluate offspring → replacement

Everything between the per-generation bookkeeping lines is whole-array
numpy over the ``(P, n)`` population matrix — including, under
``hill_climb="all"``, the boundary hill-climbing step, which runs as a
single lockstep sweep over the whole offspring batch
(:mod:`repro.ga.batch_climb`) rather than a per-row Python loop; a
paper-scale generation (320 individuals, ~300-node mesh) costs a few
milliseconds.

All fitness values flow through a per-engine :class:`BatchEvaluator`,
which skips re-evaluation of offspring that are verbatim copies of
their parents (non-recombined pairs, unmutated rows), reuses the
fitness the hill climber computes, counts every evaluated row exactly
once into :class:`GAHistory`, and tracks the best individual *ever
evaluated* — not merely the best that survived replacement.

The engine is also the single integration point for DKNUX: the
operator's :meth:`prepare` hook receives the evaluated population each
generation, which is how the dynamic estimate tracks the best-so-far
individual without the engine knowing anything operator-specific.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

from ..errors import ConfigError
from ..graphs.csr import CSRGraph
from ..obs.hooks import emit_generation
from ..partition.metrics import batch_cut_size, batch_max_part_cut
from ..partition.partition import Partition
from ..rng import SeedLike, as_generator
from .config import GAConfig
from .crossover import CrossoverOperator
from .evaluation import BatchEvaluator
from .fitness import FitnessFunction
from .hillclimb import HillClimber
from .history import GAHistory
from .mutation import BoundaryMutation, MutationOperator, PointMutation
from .population import random_population
from .selection import generational_replacement, make_selector, plus_replacement

__all__ = ["GAResult", "GAEngine"]


@dataclass
class GAResult:
    """Outcome of one GA run."""

    best: Partition
    best_fitness: float
    history: GAHistory
    generations: int
    stopped_by: str  # "max_generations" | "patience" | "target_fitness" | "deadline" | "aborted"

    @property
    def best_cut(self) -> float:
        """Total cut of the best individual (what Tables 1–3 report)."""
        return self.best.cut_size

    @property
    def best_worst_cut(self) -> float:
        """Worst-part cut of the best individual (Tables 4–6)."""
        return self.best.max_part_cut

    def __repr__(self) -> str:
        return (
            f"GAResult(fitness={self.best_fitness:g}, cut={self.best_cut:g}, "
            f"worst={self.best_worst_cut:g}, generations={self.generations}, "
            f"stopped_by={self.stopped_by!r})"
        )


class GAEngine:
    """Generational genetic algorithm for graph partitioning."""

    def __init__(
        self,
        graph: CSRGraph,
        fitness: FitnessFunction,
        crossover: CrossoverOperator,
        config: Optional[GAConfig] = None,
        seed: SeedLike = None,
    ) -> None:
        if fitness.graph is not graph:
            raise ConfigError("fitness was built for a different graph")
        self.graph = graph
        self.fitness = fitness
        self.n_parts = fitness.n_parts
        self.crossover = crossover
        self.config = config or GAConfig()
        self.rng = as_generator(seed)
        self._selector = make_selector(
            self.config.selection, self.config.tournament_size
        )
        if self.config.mutation == "point":
            self._mutator: MutationOperator = PointMutation(self.n_parts)
        else:
            self._mutator = BoundaryMutation(graph)
        self._climber: Optional[HillClimber] = None
        if self.config.hill_climb != "off":
            self._climber = HillClimber(graph, fitness)
        #: caching evaluation backend; owns eval counts and best-ever state
        self.evaluator = BatchEvaluator(
            fitness, memo_capacity=self.config.eval_memo
        )

    # ------------------------------------------------------------------
    def _initial_population(
        self, initial_population: Optional[np.ndarray]
    ) -> np.ndarray:
        p = self.config.population_size
        if initial_population is None:
            return random_population(
                self.graph.n_nodes, self.n_parts, p, seed=self.rng
            )
        pop = np.asarray(initial_population, dtype=np.int64)
        if pop.ndim != 2 or pop.shape[1] != self.graph.n_nodes:
            raise ConfigError(
                f"initial population must have shape (P, {self.graph.n_nodes}), "
                f"got {pop.shape}"
            )
        if pop.size and (pop.min() < 0 or pop.max() >= self.n_parts):
            raise ConfigError("initial population labels out of range")
        if pop.shape[0] > p:
            pop = pop[:p]
        elif pop.shape[0] < p:
            extra = random_population(
                self.graph.n_nodes, self.n_parts, p - pop.shape[0], seed=self.rng
            )
            pop = np.vstack([pop, extra])
        return pop.copy()

    def _make_offspring(
        self,
        population: np.ndarray,
        fitness_values: np.ndarray,
        track_clones: bool = True,
    ) -> tuple[np.ndarray, Optional[np.ndarray], Optional[np.ndarray]]:
        """Select parents, recombine (with prob p_c), and mutate.

        Returns ``(offspring, source_fitness, unchanged)``: each child's
        source parent fitness and a mask of children that came through
        crossover + mutation as verbatim copies of that parent — those
        rows need no re-evaluation.  ``track_clones=False`` skips that
        bookkeeping (both extras are ``None``) for callers that will
        re-evaluate every row anyway.
        """
        cfg = self.config
        p = population.shape[0]
        n_pairs = (p + 1) // 2
        idx_a = self._selector(fitness_values, n_pairs, self.rng)
        idx_b = self._selector(fitness_values, n_pairs, self.rng)
        parents_a = population[idx_a]
        parents_b = population[idx_b]

        recombine = self.rng.random(n_pairs) < cfg.crossover_rate
        child1 = parents_a.copy()
        child2 = parents_b.copy()
        if recombine.any():
            c1, c2 = self.crossover.cross(
                parents_a[recombine], parents_b[recombine], self.rng
            )
            child1[recombine] = c1
            child2[recombine] = c2
        offspring = np.vstack([child1, child2])[:p]
        offspring = self._mutator.mutate(offspring, cfg.mutation_rate, self.rng)
        if not track_clones:
            return offspring, None, None
        sources = np.vstack([parents_a, parents_b])[:p]
        source_fitness = np.concatenate(
            [fitness_values[idx_a], fitness_values[idx_b]]
        )[:p]
        unchanged = np.all(offspring == sources, axis=1)
        return offspring, source_fitness, unchanged

    def _apply_hill_climbing(
        self, offspring: np.ndarray, offspring_fitness: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, int]:
        """Returns (offspring, fitness, extra fitness evaluations).

        Only handles "best" here; "all" is dispatched in :meth:`step`
        before any offspring evaluation, since climbing every row makes
        the pre-climb fitness pass pure waste.
        """
        cfg = self.config
        if self._climber is None or cfg.hill_climb in ("off", "final", "all"):
            return offspring, offspring_fitness, 0
        # "best": climb only the best offspring of this generation
        idx = int(np.argmax(offspring_fitness))
        better, fit = self._climber.improve(
            offspring[idx], max_passes=cfg.hill_climb_passes, rng=self.rng
        )
        self.evaluator.observe(better[None, :], np.array([fit]), evaluated=1)
        offspring = offspring.copy()
        offspring_fitness = offspring_fitness.copy()
        offspring[idx] = better
        offspring_fitness[idx] = fit
        return offspring, offspring_fitness, 1

    def step(
        self, population: np.ndarray, fitness_values: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, int]:
        """Advance one generation; returns (pop, fitness, evaluations).

        ``evaluations`` counts the rows actually passed through the
        fitness function this generation — cloned offspring reuse their
        parent's fitness and are not counted, hill-climb evaluations
        are.
        """
        cfg = self.config
        climb_all = self._climber is not None and cfg.hill_climb == "all"
        self.crossover.prepare(population, fitness_values)
        offspring, source_fitness, unchanged = self._make_offspring(
            population, fitness_values, track_clones=not climb_all
        )
        if climb_all:
            # every row gets climbed in one vectorized lockstep sweep
            # (see repro.ga.batch_climb), and the climber neither needs
            # nor keeps pre-climb fitness — its batched evaluation of
            # the climbed rows is the generation's only fitness pass
            offspring, offspring_fitness = self._climber.improve_batch(
                offspring, max_passes=cfg.hill_climb_passes, rng=self.rng
            )
            self.evaluator.observe(
                offspring, offspring_fitness, evaluated=offspring.shape[0]
            )
            evaluations = offspring.shape[0]
        else:
            offspring_fitness, evaluations = self.evaluator.evaluate(
                offspring, known_fitness=source_fitness, known_mask=unchanged
            )
            offspring, offspring_fitness, climb_evals = (
                self._apply_hill_climbing(offspring, offspring_fitness)
            )
            evaluations += climb_evals
        if cfg.replacement == "plus":
            new_pop, new_fit = plus_replacement(
                population, fitness_values, offspring, offspring_fitness,
                cfg.population_size,
            )
        else:
            new_pop, new_fit = generational_replacement(
                population, fitness_values, offspring, offspring_fitness,
                cfg.population_size, elite=cfg.elite,
            )
        return new_pop, new_fit, evaluations

    # ------------------------------------------------------------------
    def run(
        self,
        initial_population: Optional[np.ndarray] = None,
        deadline: Optional[float] = None,
        abort: Optional[Callable[[float], bool]] = None,
        on_generation: Optional[Callable[..., None]] = None,
    ) -> GAResult:
        """Run to completion and return the best partition found.

        The result's ``best`` is the best individual *ever evaluated*
        (the paper reports "the best individual explored by the GA").
        The evaluator tracks it at evaluation time, so offspring that
        are dropped at replacement (generational mode with a small
        elite) still count.

        ``deadline`` (a ``time.perf_counter()`` timestamp) stops the
        loop between generations once the clock passes it
        (``stopped_by="deadline"``) — used by time-budgeted serving
        (the portfolio racer); completed generations are unaffected, so
        a non-binding deadline changes nothing.

        ``abort`` is a best-so-far callback checked between generations
        (after the deadline check): it receives the best fitness found
        so far and returning True stops the run with
        ``stopped_by="aborted"``.  The racing portfolio uses it to
        cancel a leg that can no longer beat the incumbent under the
        remaining budget; a callback that always returns False changes
        nothing.

        ``on_generation`` is a progress callback invoked after every
        recorded generation (the initial evaluation counts as
        generation 0) with keyword arguments ``generation``,
        ``best_cut``, ``best_worst_cut``, and ``evaluations``.  It is
        observational-only: the engine ignores its return value and
        shares no state with it.  Independently of the explicit
        callback, the same event reaches any ambient
        :func:`repro.obs.hooks.recording` recorder installed by the
        serving layer — a single integer check when nothing records.
        """
        cfg = self.config
        history = GAHistory()
        evaluator = self.evaluator
        evaluator.reset()
        population = self._initial_population(initial_population)
        fitness_values, evals = evaluator.evaluate(population)
        self._progress(
            on_generation, history,
            self._record(history, population, fitness_values, evals),
        )

        stopped_by = "max_generations"
        stale = 0
        best_fitness = evaluator.best_fitness
        for _ in range(cfg.max_generations):
            if deadline is not None and time.perf_counter() >= deadline:
                stopped_by = "deadline"
                break
            if abort is not None and abort(float(best_fitness)):
                stopped_by = "aborted"
                break
            population, fitness_values, evals = self.step(
                population, fitness_values
            )
            self._progress(
                on_generation, history,
                self._record(history, population, fitness_values, evals),
            )
            if evaluator.best_fitness > best_fitness:
                best_fitness = evaluator.best_fitness
                stale = 0
            else:
                stale += 1
            if cfg.target_fitness is not None and best_fitness >= cfg.target_fitness:
                stopped_by = "target_fitness"
                break
            if cfg.patience is not None and stale >= cfg.patience:
                stopped_by = "patience"
                break

        best_assignment = evaluator.best_assignment
        best_fitness = evaluator.best_fitness
        if self._climber is not None and cfg.hill_climb == "final":
            climbed, fit = self._climber.improve(
                best_assignment, max_passes=cfg.hill_climb_passes, rng=self.rng
            )
            evaluator.observe(climbed[None, :], np.array([fit]), evaluated=1)
            history.add_evaluations(1)
            if fit > best_fitness:
                best_assignment, best_fitness = climbed, fit

        best = Partition(
            self.graph, np.array(best_assignment, dtype=np.int64), self.n_parts
        )
        return GAResult(
            best=best,
            best_fitness=float(best_fitness),
            history=history,
            generations=history.n_generations - 1,
            stopped_by=stopped_by,
        )

    def _record(
        self,
        history: GAHistory,
        population: np.ndarray,
        fitness_values: np.ndarray,
        evaluations: int,
    ) -> tuple[float, float, int]:
        idx = int(np.argmax(fitness_values))
        best = population[idx][None, :]
        best_cut = float(batch_cut_size(self.graph, best)[0])
        best_worst_cut = float(
            batch_max_part_cut(self.graph, best, self.n_parts)[0]
        )
        history.record(
            fitness_values,
            best_cut=best_cut,
            best_worst_cut=best_worst_cut,
            evaluations=evaluations,
        )
        return best_cut, best_worst_cut, int(evaluations)

    @staticmethod
    def _progress(
        on_generation: Optional[Callable[..., None]],
        history: GAHistory,
        recorded: tuple[float, float, int],
    ) -> None:
        """Fan one recorded generation out to the explicit callback and
        the ambient obs recorder (values flow out, never back in)."""
        best_cut, best_worst_cut, evaluations = recorded
        generation = history.n_generations - 1
        emit_generation(
            generation=generation,
            best_cut=best_cut,
            best_worst_cut=best_worst_cut,
            evaluations=evaluations,
        )
        if on_generation is not None:
            on_generation(
                generation=generation,
                best_cut=best_cut,
                best_worst_cut=best_worst_cut,
                evaluations=evaluations,
            )
