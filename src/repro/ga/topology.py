"""Island topologies for the distributed-population GA.

The paper runs 16 subpopulations "configured as a four dimensional
hypercube"; neighboring islands exchange their best individuals.  A
topology here is just the neighbor lists of a small regular graph over
island ids; ring and 2-D mesh are provided for ablations, and hypercube
matches the paper.
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigError

__all__ = ["Topology", "ring_topology", "mesh_topology", "hypercube_topology", "make_topology"]


class Topology:
    """Neighbor structure over ``n_islands`` island ids."""

    def __init__(self, n_islands: int, neighbors: dict[int, list[int]], name: str) -> None:
        if n_islands < 1:
            raise ConfigError(f"n_islands must be >= 1, got {n_islands}")
        for island, nbrs in neighbors.items():
            if not 0 <= island < n_islands:
                raise ConfigError(f"island id {island} out of range")
            for other in nbrs:
                if not 0 <= other < n_islands:
                    raise ConfigError(f"neighbor id {other} out of range")
                if other == island:
                    raise ConfigError(f"island {island} lists itself as neighbor")
        self.n_islands = n_islands
        self._neighbors = {i: sorted(neighbors.get(i, [])) for i in range(n_islands)}
        self.name = name
        # symmetry check — migration is bidirectional in the paper's model
        for i, nbrs in self._neighbors.items():
            for j in nbrs:
                if i not in self._neighbors[j]:
                    raise ConfigError(f"asymmetric topology: {i}->{j} but not {j}->{i}")

    def neighbors(self, island: int) -> list[int]:
        if not 0 <= island < self.n_islands:
            raise ConfigError(f"island {island} out of range")
        return list(self._neighbors[island])

    def edges(self) -> list[tuple[int, int]]:
        """Undirected island links (i < j)."""
        out = []
        for i, nbrs in self._neighbors.items():
            out.extend((i, j) for j in nbrs if i < j)
        return out

    def degree(self, island: int) -> int:
        return len(self._neighbors[island])

    def __repr__(self) -> str:
        return f"Topology({self.name!r}, n_islands={self.n_islands})"


def ring_topology(n_islands: int) -> Topology:
    """Bidirectional ring (each island has two neighbors)."""
    if n_islands < 1:
        raise ConfigError(f"n_islands must be >= 1, got {n_islands}")
    nbrs: dict[int, list[int]] = {i: [] for i in range(n_islands)}
    if n_islands == 2:
        nbrs = {0: [1], 1: [0]}
    elif n_islands > 2:
        for i in range(n_islands):
            nbrs[i] = [(i - 1) % n_islands, (i + 1) % n_islands]
    return Topology(n_islands, nbrs, "ring")


def mesh_topology(rows: int, cols: int) -> Topology:
    """2-D mesh (no wraparound) of ``rows * cols`` islands."""
    if rows < 1 or cols < 1:
        raise ConfigError("mesh dimensions must be positive")
    n = rows * cols
    nbrs: dict[int, list[int]] = {i: [] for i in range(n)}
    for r in range(rows):
        for c in range(cols):
            i = r * cols + c
            if c + 1 < cols:
                nbrs[i].append(i + 1)
                nbrs[i + 1].append(i)
            if r + 1 < rows:
                nbrs[i].append(i + cols)
                nbrs[i + cols].append(i)
    return Topology(n, nbrs, f"mesh{rows}x{cols}")


def hypercube_topology(dim: int) -> Topology:
    """``dim``-dimensional hypercube over ``2**dim`` islands.

    ``dim=4`` gives the paper's 16-subpopulation configuration.
    """
    if dim < 0:
        raise ConfigError(f"dimension must be >= 0, got {dim}")
    n = 1 << dim
    nbrs = {i: [i ^ (1 << b) for b in range(dim)] for i in range(n)}
    return Topology(n, nbrs, f"hypercube{dim}")


def make_topology(kind: str, n_islands: int) -> Topology:
    """Factory from a config string.

    ``"hypercube"`` requires a power-of-two island count; ``"mesh"``
    factors ``n_islands`` into the most square grid available.
    """
    kind = kind.lower()
    if kind == "ring":
        return ring_topology(n_islands)
    if kind == "hypercube":
        dim = int(n_islands).bit_length() - 1
        if 1 << dim != n_islands:
            raise ConfigError(
                f"hypercube topology needs a power-of-two island count, got {n_islands}"
            )
        return hypercube_topology(dim)
    if kind == "mesh":
        best_r = 1
        for r in range(1, int(np.sqrt(n_islands)) + 1):
            if n_islands % r == 0:
                best_r = r
        return mesh_topology(best_r, n_islands // best_r)
    raise ConfigError(f"unknown topology {kind!r}; expected ring, mesh, or hypercube")
