"""2-D Hilbert curve indexing (extension beyond the paper).

The paper's appendix lists row-major and shuffled row-major as "two of
the several ways of indexing pixels"; the Hilbert space-filling curve is
the strongest locality-preserving member of that family and is included
so IBP can be ablated across indexing schemes.

Classic iterative rot/flip algorithm over a ``2^order x 2^order`` grid.
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigError

__all__ = ["hilbert_index", "hilbert_indices", "hilbert_matrix"]


def _rotate(n: int, x: np.ndarray, y: np.ndarray, rx: np.ndarray, ry: np.ndarray):
    """Rotate/flip quadrant coordinates in place (vectorized)."""
    swap = ry == 0
    flip = swap & (rx == 1)
    x_f = np.where(flip, n - 1 - x, x)
    y_f = np.where(flip, n - 1 - y, y)
    x_new = np.where(swap, y_f, x_f)
    y_new = np.where(swap, x_f, y_f)
    return x_new, y_new


def hilbert_indices(coords: np.ndarray, order: int) -> np.ndarray:
    """Hilbert index of each ``(x, y)`` row on a ``2^order`` grid."""
    if order < 1 or order > 31:
        raise ConfigError(f"order must be in [1, 31], got {order}")
    arr = np.asarray(coords)
    if arr.ndim != 2 or arr.shape[1] != 2:
        raise ConfigError(f"coords must have shape (n, 2), got {arr.shape}")
    side = 1 << order
    if arr.size and (arr.min() < 0 or arr.max() >= side):
        raise ConfigError(f"coordinates out of range [0, {side})")
    x = arr[:, 0].astype(np.int64).copy()
    y = arr[:, 1].astype(np.int64).copy()
    d = np.zeros(arr.shape[0], dtype=np.int64)
    s = side // 2
    while s > 0:
        rx = ((x & s) > 0).astype(np.int64)
        ry = ((y & s) > 0).astype(np.int64)
        d += s * s * ((3 * rx) ^ ry)
        x, y = _rotate(s, x, y, rx, ry)
        s //= 2
    return d


def hilbert_index(x: int, y: int, order: int) -> int:
    """Scalar convenience wrapper around :func:`hilbert_indices`."""
    return int(hilbert_indices(np.array([[x, y]]), order)[0])


def hilbert_matrix(order: int) -> np.ndarray:
    """``M[y, x]`` = Hilbert index, for visual inspection and tests."""
    side = 1 << order
    xx, yy = np.meshgrid(np.arange(side), np.arange(side), indexing="xy")
    coords = np.column_stack([xx.ravel(), yy.ravel()])
    return hilbert_indices(coords, order).reshape(side, side)
