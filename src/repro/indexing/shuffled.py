"""Shuffled row-major (bit-interleaved / Morton) indexing — Figure 1(b).

The shuffled row-major index of pixel ``(row, col)`` interleaves the
bits of the two coordinates (column bits in the even positions), so that
proximity in 2-D is largely preserved in the 1-D index — the property
the Index-Based Partitioner relies on.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..errors import ConfigError
from .interleave import interleave_arrays, interleave_bits

__all__ = [
    "shuffled_row_major_index",
    "shuffled_row_major_indices",
    "shuffled_row_major_matrix",
]


def _bits_for(size: int) -> int:
    if size <= 0:
        raise ConfigError(f"dimension size must be positive, got {size}")
    return max(int(size - 1).bit_length(), 1)


def shuffled_row_major_index(coords: Sequence[int], shape: Sequence[int]) -> int:
    """Shuffled row-major index of one multi-dimensional coordinate.

    Bit widths per dimension come from the dimension sizes (unequal
    sizes use the paper's generalized unequal-width interleave).
    """
    if len(coords) != len(shape):
        raise ConfigError(f"{len(coords)} coords but {len(shape)} dims")
    widths = [_bits_for(s) for s in shape]
    for c, s in zip(coords, shape):
        if not 0 <= c < s:
            raise ConfigError(f"coordinate {c} out of range [0, {s})")
    return interleave_bits(list(coords), widths)


def shuffled_row_major_indices(
    coords: np.ndarray, shape: Sequence[int]
) -> np.ndarray:
    """Vectorized shuffled row-major indices for ``(n, d)`` coordinates."""
    arr = np.asarray(coords)
    if arr.ndim != 2 or arr.shape[1] != len(shape):
        raise ConfigError(
            f"coords must have shape (n, {len(shape)}), got {arr.shape}"
        )
    widths = [_bits_for(s) for s in shape]
    if arr.size and (arr.min() < 0 or np.any(arr >= np.asarray(shape))):
        raise ConfigError("coordinate out of range")
    return interleave_arrays(arr.astype(np.int64), widths)


def shuffled_row_major_matrix(rows: int, cols: int) -> np.ndarray:
    """Matrix ``M[r, c]`` of shuffled row-major indices.

    ``shuffled_row_major_matrix(8, 8)`` reproduces Figure 1(b) of the
    paper exactly (verified in the test-suite).
    """
    rr, cc = np.meshgrid(np.arange(rows), np.arange(cols), indexing="ij")
    coords = np.column_stack([rr.ravel(), cc.ravel()])
    return shuffled_row_major_indices(coords, (rows, cols)).reshape(rows, cols)
