"""Row-major indexing (Figure 1(a) of the paper)."""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..errors import ConfigError

__all__ = ["row_major_index", "row_major_matrix", "row_major_indices"]


def row_major_index(coords: Sequence[int], shape: Sequence[int]) -> int:
    """Flatten multi-dimensional ``coords`` in row-major (C) order."""
    if len(coords) != len(shape):
        raise ConfigError(
            f"{len(coords)} coordinates but {len(shape)} dimensions"
        )
    index = 0
    for c, s in zip(coords, shape):
        if s <= 0:
            raise ConfigError(f"non-positive dimension size {s}")
        if not 0 <= c < s:
            raise ConfigError(f"coordinate {c} out of range [0, {s})")
        index = index * s + c
    return index


def row_major_indices(coords: np.ndarray, shape: Sequence[int]) -> np.ndarray:
    """Vectorized row-major index of an ``(n, d)`` coordinate array."""
    arr = np.asarray(coords)
    if arr.ndim != 2 or arr.shape[1] != len(shape):
        raise ConfigError(
            f"coords must have shape (n, {len(shape)}), got {arr.shape}"
        )
    if arr.size and (arr.min() < 0 or np.any(arr >= np.asarray(shape))):
        raise ConfigError("coordinate out of range")
    return np.ravel_multi_index(tuple(arr.T), tuple(shape)).astype(np.int64)


def row_major_matrix(rows: int, cols: int) -> np.ndarray:
    """The ``rows x cols`` matrix of row-major indices.

    ``row_major_matrix(8, 8)`` is exactly Figure 1(a) of the paper.
    """
    if rows <= 0 or cols <= 0:
        raise ConfigError("matrix dimensions must be positive")
    return np.arange(rows * cols, dtype=np.int64).reshape(rows, cols)
