"""Bit interleaving — the paper's appendix indexing primitive.

The appendix defines the interleaved index of multi-dimensional
coordinates by "choosing bits (right to left) of each of the dimensions
one by one, starting from dimension 3 [the last]. When the bits of a
particular dimension are no longer available, that dimension is not
considered."  Both worked examples from the appendix are reproduced in
the test-suite:

* ``index1=001, index2=010, index3=110  ->  001011100``
* ``index1=101, index2=01,  index3=0    ->  100110``  (unequal widths)

So, collecting output bits least-significant first: for each bit level
``t = 0, 1, ...``, for each dimension from the *last* to the first,
append bit ``t`` of that dimension if the dimension still has bits.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..errors import ConfigError

__all__ = ["interleave_bits", "deinterleave_bits", "interleave_arrays"]


def _check_widths(values: Sequence[int], widths: Sequence[int]) -> None:
    if len(values) != len(widths):
        raise ConfigError(
            f"{len(values)} values but {len(widths)} bit widths"
        )
    for v, w in zip(values, widths):
        if w < 0:
            raise ConfigError(f"negative bit width {w}")
        if v < 0:
            raise ConfigError(f"negative coordinate {v}")
        if v >> w:
            raise ConfigError(f"value {v} does not fit in {w} bits")


def interleave_bits(values: Sequence[int], widths: Sequence[int]) -> int:
    """Interleave scalar coordinates into one index (paper's rule)."""
    _check_widths(values, widths)
    result = 0
    out_bit = 0
    max_w = max(widths, default=0)
    for t in range(max_w):
        for dim in reversed(range(len(values))):
            if t < widths[dim]:
                result |= ((values[dim] >> t) & 1) << out_bit
                out_bit += 1
    return result


def deinterleave_bits(index: int, widths: Sequence[int]) -> tuple[int, ...]:
    """Inverse of :func:`interleave_bits` for the same bit widths."""
    if index < 0:
        raise ConfigError(f"negative index {index}")
    values = [0] * len(widths)
    out_bit = 0
    max_w = max(widths, default=0)
    for t in range(max_w):
        for dim in reversed(range(len(widths))):
            if t < widths[dim]:
                values[dim] |= ((index >> out_bit) & 1) << t
                out_bit += 1
    if index >> out_bit:
        raise ConfigError(
            f"index {index} has more bits than the widths {list(widths)} allow"
        )
    return tuple(values)


def interleave_arrays(coords: np.ndarray, widths: Sequence[int]) -> np.ndarray:
    """Vectorized interleave of an ``(n, d)`` integer coordinate array.

    Returns an ``(n,)`` int64 index array; total bits must fit in 63.
    """
    arr = np.asarray(coords)
    if arr.ndim != 2:
        raise ConfigError(f"coords must be 2-D, got shape {arr.shape}")
    if not np.issubdtype(arr.dtype, np.integer):
        raise ConfigError("coords must be integer-typed")
    d = arr.shape[1]
    if len(widths) != d:
        raise ConfigError(f"{d} dimensions but {len(widths)} widths")
    if sum(widths) > 63:
        raise ConfigError(f"total bit width {sum(widths)} exceeds 63")
    if arr.size:
        if arr.min() < 0:
            raise ConfigError("negative coordinates")
        for dim in range(d):
            if widths[dim] < 64 and arr.shape[0] and np.any(arr[:, dim] >> widths[dim]):
                raise ConfigError(
                    f"dimension {dim} values do not fit in {widths[dim]} bits"
                )
    out = np.zeros(arr.shape[0], dtype=np.int64)
    out_bit = 0
    max_w = max(widths, default=0)
    for t in range(max_w):
        for dim in reversed(range(d)):
            if t < widths[dim]:
                out |= ((arr[:, dim] >> t) & 1).astype(np.int64) << out_bit
                out_bit += 1
    return out
