"""Indexing schemes for index-based partitioning (paper appendix)."""

from .interleave import deinterleave_bits, interleave_arrays, interleave_bits
from .rowmajor import row_major_index, row_major_indices, row_major_matrix
from .shuffled import (
    shuffled_row_major_index,
    shuffled_row_major_indices,
    shuffled_row_major_matrix,
)
from .hilbert import hilbert_index, hilbert_indices, hilbert_matrix

__all__ = [
    "deinterleave_bits",
    "interleave_arrays",
    "interleave_bits",
    "row_major_index",
    "row_major_indices",
    "row_major_matrix",
    "shuffled_row_major_index",
    "shuffled_row_major_indices",
    "shuffled_row_major_matrix",
    "hilbert_index",
    "hilbert_indices",
    "hilbert_matrix",
]
