"""Structural invariant checks for :class:`CSRGraph`.

``check_graph`` is used by the test-suite's property tests and by the
experiment runner before committing to a long GA run; it re-derives the
CSR adjacency from the edge list and verifies the two views agree.
"""

from __future__ import annotations

import numpy as np

from ..errors import GraphError
from .csr import CSRGraph

__all__ = ["check_graph"]


def check_graph(graph: CSRGraph) -> None:
    """Raise :class:`GraphError` if any internal invariant is violated."""
    n, m = graph.n_nodes, graph.n_edges

    if graph.edges_u.shape != (m,) or graph.edges_v.shape != (m,):
        raise GraphError("edge array shapes inconsistent with n_edges")
    if graph.edge_weights.shape != (m,):
        raise GraphError("edge_weights shape mismatch")
    if graph.node_weights.shape != (n,):
        raise GraphError("node_weights shape mismatch")
    if m and not np.all(graph.edges_u < graph.edges_v):
        raise GraphError("edge list not in canonical (u < v) orientation")
    if m:
        key = graph.edges_u.astype(np.int64) * n + graph.edges_v
        if np.unique(key).size != m:
            raise GraphError("duplicate edges present")
        if graph.edges_u.min() < 0 or graph.edges_v.max() >= n:
            raise GraphError("edge endpoint out of range")

    if graph.indptr.shape != (n + 1,):
        raise GraphError("indptr shape mismatch")
    if graph.indptr[0] != 0 or graph.indptr[-1] != 2 * m:
        raise GraphError("indptr endpoints wrong")
    if np.any(np.diff(graph.indptr) < 0):
        raise GraphError("indptr not monotone")
    if graph.indices.shape != (2 * m,) or graph.adj_weights.shape != (2 * m,):
        raise GraphError("adjacency array shape mismatch")

    # The CSR view must contain each undirected edge exactly twice with
    # matching weight and edge id.
    deg = np.zeros(n, dtype=np.int64)
    np.add.at(deg, graph.edges_u, 1)
    np.add.at(deg, graph.edges_v, 1)
    if not np.array_equal(deg, np.diff(graph.indptr)):
        raise GraphError("CSR degrees disagree with edge list degrees")
    src = np.repeat(np.arange(n), np.diff(graph.indptr))
    eid = graph.adj_edge_ids
    if m:
        if eid.min() < 0 or eid.max() >= m:
            raise GraphError("adjacency edge id out of range")
        counts = np.bincount(eid, minlength=m)
        if not np.all(counts == 2):
            raise GraphError("each edge must appear exactly twice in CSR view")
        other = np.where(src == graph.edges_u[eid], graph.edges_v[eid], graph.edges_u[eid])
        if not np.array_equal(other, graph.indices):
            raise GraphError("CSR indices disagree with edge list endpoints")
        if not np.array_equal(graph.adj_weights, graph.edge_weights[eid]):
            raise GraphError("CSR adjacency weights disagree with edge weights")

    if graph.coords is not None and graph.coords.shape[0] != n:
        raise GraphError("coords row count mismatch")
