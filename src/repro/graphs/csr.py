"""Compressed-sparse-row graph — the core substrate of the library.

The paper partitions undirected graphs whose vertices carry computation
weights and whose edges carry communication weights.  :class:`CSRGraph`
stores such a graph in numpy CSR form so that every hot path in the GA
(fitness evaluation, KNUX bias tables, hill-climbing gains) is a handful
of vectorized gathers/scatters instead of Python loops.

Internally we keep two complementary views of the same edge set:

* an *edge list* ``(edges_u, edges_v)`` with ``edges_u < edges_v`` — one
  entry per undirected edge, used for cut-size evaluation;
* a *CSR adjacency* ``(indptr, indices, adj_weights)`` listing every
  neighbor of every vertex (each undirected edge appears twice), used for
  neighborhood queries such as KNUX's ``#(i, X, I)`` counts.

Both views are immutable after construction; graph *updates* build new
graphs (see :mod:`repro.incremental.updates`).
"""

from __future__ import annotations

from typing import Iterable, Iterator, Optional, Sequence

import numpy as np

from ..errors import GraphError

__all__ = ["CSRGraph"]


def _as_index_array(values, name: str) -> np.ndarray:
    arr = np.asarray(values, dtype=np.int64)
    if arr.ndim != 1:
        raise GraphError(f"{name} must be one-dimensional, got shape {arr.shape}")
    return arr


class CSRGraph:
    """An immutable undirected graph with weighted nodes and edges.

    Parameters
    ----------
    n_nodes:
        Number of vertices; vertices are labelled ``0 .. n_nodes-1``.
    edges_u, edges_v:
        Endpoint arrays of the undirected edge list.  Self-loops are
        rejected; duplicate edges are merged by summing their weights.
    edge_weights:
        Per-edge communication cost ``w_e`` (default: all ones).
    node_weights:
        Per-node computation cost ``w_i`` (default: all ones).
    coords:
        Optional ``(n_nodes, d)`` geometric coordinates.  Required by the
        coordinate-based partitioners (IBP, RCB); carried by all mesh
        generators.
    """

    __slots__ = (
        "n_nodes",
        "n_edges",
        "edges_u",
        "edges_v",
        "edge_weights",
        "node_weights",
        "coords",
        "indptr",
        "indices",
        "adj_weights",
        "adj_edge_ids",
        "_strengths",
        "_unit_edge_weights",
        "_unit_node_weights",
        "_integer_edge_weights",
    )

    def __init__(
        self,
        n_nodes: int,
        edges_u: Iterable[int],
        edges_v: Iterable[int],
        edge_weights: Optional[Iterable[float]] = None,
        node_weights: Optional[Iterable[float]] = None,
        coords: Optional[np.ndarray] = None,
    ) -> None:
        if n_nodes < 0:
            raise GraphError(f"n_nodes must be non-negative, got {n_nodes}")
        self.n_nodes = int(n_nodes)

        u = _as_index_array(edges_u, "edges_u")
        v = _as_index_array(edges_v, "edges_v")
        if u.shape != v.shape:
            raise GraphError(
                f"edge endpoint arrays differ in length: {u.shape[0]} vs {v.shape[0]}"
            )
        if u.size and (u.min() < 0 or v.min() < 0):
            raise GraphError("edge endpoints must be non-negative")
        if u.size and (u.max() >= n_nodes or v.max() >= n_nodes):
            raise GraphError(
                f"edge endpoint out of range for a graph with {n_nodes} nodes"
            )
        if np.any(u == v):
            raise GraphError("self-loops are not allowed")

        if edge_weights is None:
            w = np.ones(u.size, dtype=np.float64)
        else:
            w = np.asarray(edge_weights, dtype=np.float64)
            if w.shape != u.shape:
                raise GraphError(
                    f"edge_weights length {w.size} != number of edges {u.size}"
                )
            if w.size and w.min() < 0:
                raise GraphError("edge weights must be non-negative")

        # Canonical orientation (u < v), then merge duplicates by weight sum.
        lo = np.minimum(u, v)
        hi = np.maximum(u, v)
        if lo.size:
            order = np.lexsort((hi, lo))
            lo, hi, w = lo[order], hi[order], w[order]
            keep = np.ones(lo.size, dtype=bool)
            keep[1:] = (lo[1:] != lo[:-1]) | (hi[1:] != hi[:-1])
            if not keep.all():
                group = np.cumsum(keep) - 1
                merged = np.zeros(int(group[-1]) + 1, dtype=np.float64)
                np.add.at(merged, group, w)
                lo, hi, w = lo[keep], hi[keep], merged
        self.edges_u = lo
        self.edges_v = hi
        self.edge_weights = w
        self.n_edges = int(lo.size)

        if node_weights is None:
            nw = np.ones(self.n_nodes, dtype=np.float64)
        else:
            nw = np.asarray(node_weights, dtype=np.float64)
            if nw.shape != (self.n_nodes,):
                raise GraphError(
                    f"node_weights length {nw.size} != n_nodes {self.n_nodes}"
                )
            if nw.size and nw.min() < 0:
                raise GraphError("node weights must be non-negative")
        self.node_weights = nw

        if coords is not None:
            coords = np.asarray(coords, dtype=np.float64)
            if coords.ndim == 1:
                coords = coords.reshape(-1, 1)
            if coords.shape[0] != self.n_nodes:
                raise GraphError(
                    f"coords has {coords.shape[0]} rows but graph has "
                    f"{self.n_nodes} nodes"
                )
        self.coords = coords

        self._build_adjacency()
        # Lazily-computed derived quantities; safe to cache because every
        # array below is frozen for the graph's lifetime.
        self._strengths: Optional[np.ndarray] = None
        self._unit_edge_weights: Optional[bool] = None
        self._unit_node_weights: Optional[bool] = None
        self._integer_edge_weights: Optional[bool] = None
        # Freeze all array state so accidental in-place mutation by callers
        # fails loudly instead of silently corrupting shared graphs.
        for name in (
            "edges_u",
            "edges_v",
            "edge_weights",
            "node_weights",
            "indptr",
            "indices",
            "adj_weights",
            "adj_edge_ids",
        ):
            getattr(self, name).setflags(write=False)
        if self.coords is not None:
            self.coords.setflags(write=False)

    def _build_adjacency(self) -> None:
        n, m = self.n_nodes, self.n_edges
        deg = np.zeros(n, dtype=np.int64)
        np.add.at(deg, self.edges_u, 1)
        np.add.at(deg, self.edges_v, 1)
        indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(deg, out=indptr[1:])
        indices = np.empty(2 * m, dtype=np.int64)
        adj_w = np.empty(2 * m, dtype=np.float64)
        adj_eid = np.empty(2 * m, dtype=np.int64)
        cursor = indptr[:-1].copy()
        # Vectorized fill: emit (u -> v) entries sorted by u, then (v -> u)
        # entries sorted by v; both endpoint arrays are already grouped in
        # canonical edge order, so argsort is cheap and stable.
        for src, dst in ((self.edges_u, self.edges_v), (self.edges_v, self.edges_u)):
            order = np.argsort(src, kind="stable")
            s, d = src[order], dst[order]
            counts = np.bincount(s, minlength=n)
            # Position of each entry within its source's slot block.
            offsets = np.arange(s.size) - np.repeat(
                np.cumsum(counts) - counts, counts
            )
            slots = cursor[s] + offsets
            indices[slots] = d
            adj_w[slots] = self.edge_weights[order]
            adj_eid[slots] = order
            cursor += counts
        self.indptr = indptr
        self.indices = indices
        self.adj_weights = adj_w
        self.adj_edge_ids = adj_eid

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def neighbors(self, node: int) -> np.ndarray:
        """Neighbor ids of ``node`` (read-only view into the CSR arrays)."""
        if not 0 <= node < self.n_nodes:
            raise GraphError(f"node {node} out of range [0, {self.n_nodes})")
        return self.indices[self.indptr[node] : self.indptr[node + 1]]

    def neighbor_weights(self, node: int) -> np.ndarray:
        """Edge weights aligned with :meth:`neighbors`."""
        if not 0 <= node < self.n_nodes:
            raise GraphError(f"node {node} out of range [0, {self.n_nodes})")
        return self.adj_weights[self.indptr[node] : self.indptr[node + 1]]

    def degree(self, node: Optional[int] = None):
        """Degree of one node, or the full degree array when ``node`` is None."""
        degrees = np.diff(self.indptr)
        if node is None:
            return degrees
        if not 0 <= node < self.n_nodes:
            raise GraphError(f"node {node} out of range [0, {self.n_nodes})")
        return int(degrees[node])

    def has_edge(self, u: int, v: int) -> bool:
        """True iff the undirected edge ``{u, v}`` exists."""
        if u == v:
            return False
        if not (0 <= u < self.n_nodes and 0 <= v < self.n_nodes):
            return False
        return bool(np.isin(v, self.neighbors(u)))

    def edge_list(self) -> np.ndarray:
        """``(n_edges, 2)`` array of canonical (u < v) edge endpoints."""
        return np.column_stack([self.edges_u, self.edges_v])

    def total_node_weight(self) -> float:
        """Sum of all node weights (the total computational load)."""
        return float(self.node_weights.sum())

    def total_edge_weight(self) -> float:
        """Sum of all edge weights (the total potential communication)."""
        return float(self.edge_weights.sum())

    def node_strengths(self) -> np.ndarray:
        """Total incident edge weight per node: ``s[v] = sum_{e ∋ v} w_e``.

        Cached after the first call (the graph is immutable); the returned
        array is read-only and shared between callers.
        """
        s = self._strengths
        if s is None:
            n = self.n_nodes
            s = np.bincount(self.edges_u, weights=self.edge_weights, minlength=n)
            s += np.bincount(self.edges_v, weights=self.edge_weights, minlength=n)
            s.setflags(write=False)
            self._strengths = s
        return s

    def has_unit_edge_weights(self) -> bool:
        """True iff every edge weight equals 1.0 (cached)."""
        u = self._unit_edge_weights
        if u is None:
            u = bool(np.all(self.edge_weights == 1.0))
            self._unit_edge_weights = u
        return u

    def has_unit_node_weights(self) -> bool:
        """True iff every node weight equals 1.0 (cached)."""
        u = self._unit_node_weights
        if u is None:
            u = bool(np.all(self.node_weights == 1.0))
            self._unit_node_weights = u
        return u

    def has_integer_edge_weights(self) -> bool:
        """True iff every edge weight is integer-valued (cached)."""
        u = self._integer_edge_weights
        if u is None:
            u = bool(np.all(self.edge_weights == np.trunc(self.edge_weights)))
            self._integer_edge_weights = u
        return u

    def iter_edges(self) -> Iterator[tuple[int, int, float]]:
        """Yield ``(u, v, weight)`` per undirected edge (canonical order)."""
        for u, v, w in zip(self.edges_u, self.edges_v, self.edge_weights):
            yield int(u), int(v), float(w)

    # ------------------------------------------------------------------
    # Dunder protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self.n_nodes

    def __repr__(self) -> str:
        dims = "" if self.coords is None else f", coords={self.coords.shape[1]}d"
        return f"CSRGraph(n_nodes={self.n_nodes}, n_edges={self.n_edges}{dims})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CSRGraph):
            return NotImplemented
        if self.n_nodes != other.n_nodes or self.n_edges != other.n_edges:
            return False
        same = (
            np.array_equal(self.edges_u, other.edges_u)
            and np.array_equal(self.edges_v, other.edges_v)
            and np.array_equal(self.edge_weights, other.edge_weights)
            and np.array_equal(self.node_weights, other.node_weights)
        )
        if not same:
            return False
        if (self.coords is None) != (other.coords is None):
            return False
        if self.coords is not None:
            return np.array_equal(self.coords, other.coords)
        return True

    def __hash__(self):  # pragma: no cover - explicit unhashability
        raise TypeError("CSRGraph is not hashable")

    # ------------------------------------------------------------------
    # Derived graphs
    # ------------------------------------------------------------------
    def with_coords(self, coords: np.ndarray) -> "CSRGraph":
        """Copy of this graph carrying the given coordinates."""
        return CSRGraph(
            self.n_nodes,
            self.edges_u,
            self.edges_v,
            self.edge_weights,
            self.node_weights,
            coords=coords,
        )

    def with_weights(
        self,
        node_weights: Optional[np.ndarray] = None,
        edge_weights: Optional[np.ndarray] = None,
    ) -> "CSRGraph":
        """Copy with replaced node and/or edge weights."""
        return CSRGraph(
            self.n_nodes,
            self.edges_u,
            self.edges_v,
            self.edge_weights if edge_weights is None else edge_weights,
            self.node_weights if node_weights is None else node_weights,
            coords=self.coords,
        )
