"""Graph serialization: METIS ``.graph`` format, edge lists, and JSON.

The METIS ``chaco/metis`` text format is the lingua franca of the graph
partitioning community, so graphs built here can be exchanged with other
partitioning tools and vice versa.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Optional, Union

import numpy as np

from ..errors import GraphFormatError
from .csr import CSRGraph

__all__ = [
    "write_metis",
    "read_metis",
    "write_edge_list",
    "read_edge_list",
    "write_json",
    "read_json",
]

PathLike = Union[str, Path]


def write_metis(graph: CSRGraph, path: PathLike) -> None:
    """Write a graph in METIS format (1-based adjacency lists).

    Header flags: ``fmt=11`` when both node and edge weights are present,
    ``fmt=1`` for edge weights only, ``fmt=10`` for node weights only,
    no flag when all weights are 1.  Integer weights are required by the
    format; non-integer weights raise :class:`GraphFormatError`.
    """
    has_nw = not np.all(graph.node_weights == 1)
    has_ew = not np.all(graph.edge_weights == 1)
    for arr, what in ((graph.node_weights, "node"), (graph.edge_weights, "edge")):
        if not np.allclose(arr, np.round(arr)):
            raise GraphFormatError(f"METIS format requires integer {what} weights")
    lines = []
    fmt = f"{int(has_nw)}{int(has_ew)}"
    header = f"{graph.n_nodes} {graph.n_edges}"
    if fmt != "00":
        header += f" {fmt}"
    lines.append(header)
    for node in range(graph.n_nodes):
        parts: list[str] = []
        if has_nw:
            parts.append(str(int(graph.node_weights[node])))
        lo, hi = graph.indptr[node], graph.indptr[node + 1]
        for nbr, w in zip(graph.indices[lo:hi], graph.adj_weights[lo:hi]):
            parts.append(str(int(nbr) + 1))
            if has_ew:
                parts.append(str(int(w)))
        lines.append(" ".join(parts))
    Path(path).write_text("\n".join(lines) + "\n")


def read_metis(path: PathLike) -> CSRGraph:
    """Read a METIS-format graph file."""
    text = Path(path).read_text()
    rows = [
        line.split()
        for line in text.splitlines()
        if line.strip() and not line.lstrip().startswith("%")
    ]
    if not rows:
        raise GraphFormatError("empty METIS file")
    header = rows[0]
    if len(header) < 2:
        raise GraphFormatError(f"bad METIS header: {header!r}")
    n_nodes, n_edges = int(header[0]), int(header[1])
    fmt = header[2] if len(header) > 2 else "0"
    fmt = fmt.zfill(2)
    has_nw, has_ew = fmt[-2] == "1", fmt[-1] == "1"
    body = rows[1:]
    if len(body) != n_nodes:
        raise GraphFormatError(
            f"METIS header declares {n_nodes} nodes but file has {len(body)} lines"
        )
    us, vs, ws = [], [], []
    node_w = np.ones(n_nodes)
    for node, tokens in enumerate(body):
        pos = 0
        if has_nw:
            if not tokens:
                raise GraphFormatError(f"node {node + 1}: missing weight")
            node_w[node] = float(tokens[0])
            pos = 1
        step = 2 if has_ew else 1
        rest = tokens[pos:]
        if len(rest) % step:
            raise GraphFormatError(f"node {node + 1}: ragged adjacency list")
        for i in range(0, len(rest), step):
            nbr = int(rest[i]) - 1
            if not 0 <= nbr < n_nodes:
                raise GraphFormatError(f"node {node + 1}: neighbor {nbr + 1} out of range")
            if nbr > node:  # each undirected edge listed from both sides
                us.append(node)
                vs.append(nbr)
                ws.append(float(rest[i + 1]) if has_ew else 1.0)
    g = CSRGraph(n_nodes, us, vs, ws, node_w)
    if g.n_edges != n_edges:
        raise GraphFormatError(
            f"METIS header declares {n_edges} edges but adjacency lists give {g.n_edges}"
        )
    return g


def write_edge_list(graph: CSRGraph, path: PathLike) -> None:
    """Write ``u v weight`` lines (0-based) preceded by a ``# nodes`` header."""
    lines = [f"# nodes {graph.n_nodes}"]
    lines += [f"{u} {v} {w:g}" for u, v, w in graph.iter_edges()]
    Path(path).write_text("\n".join(lines) + "\n")


def read_edge_list(path: PathLike) -> CSRGraph:
    """Read the edge-list format produced by :func:`write_edge_list`."""
    n_nodes: Optional[int] = None
    us, vs, ws = [], [], []
    for raw in Path(path).read_text().splitlines():
        line = raw.strip()
        if not line:
            continue
        if line.startswith("#"):
            tokens = line[1:].split()
            if len(tokens) == 2 and tokens[0] == "nodes":
                n_nodes = int(tokens[1])
            continue
        tokens = line.split()
        if len(tokens) not in (2, 3):
            raise GraphFormatError(f"bad edge line: {raw!r}")
        us.append(int(tokens[0]))
        vs.append(int(tokens[1]))
        ws.append(float(tokens[2]) if len(tokens) == 3 else 1.0)
    if n_nodes is None:
        n_nodes = (max(max(us, default=-1), max(vs, default=-1)) + 1) if us else 0
    return CSRGraph(n_nodes, us, vs, ws)


def write_json(graph: CSRGraph, path: PathLike) -> None:
    """Write the full graph (weights + coordinates) as JSON."""
    payload = {
        "n_nodes": graph.n_nodes,
        "edges_u": graph.edges_u.tolist(),
        "edges_v": graph.edges_v.tolist(),
        "edge_weights": graph.edge_weights.tolist(),
        "node_weights": graph.node_weights.tolist(),
        "coords": None if graph.coords is None else graph.coords.tolist(),
    }
    Path(path).write_text(json.dumps(payload))


def read_json(path: PathLike) -> CSRGraph:
    """Read a graph produced by :func:`write_json`."""
    try:
        payload = json.loads(Path(path).read_text())
        return CSRGraph(
            payload["n_nodes"],
            payload["edges_u"],
            payload["edges_v"],
            payload["edge_weights"],
            payload["node_weights"],
            coords=None if payload["coords"] is None else np.array(payload["coords"]),
        )
    except (KeyError, json.JSONDecodeError) as exc:
        raise GraphFormatError(f"bad JSON graph file: {exc}") from exc
