"""Graph serialization: METIS ``.graph`` format, edge lists, and JSON.

The METIS ``chaco/metis`` text format is the lingua franca of the graph
partitioning community, so graphs built here can be exchanged with other
partitioning tools and vice versa.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Optional, Union

import numpy as np

from ..errors import GraphFormatError
from .csr import CSRGraph

__all__ = [
    "write_metis",
    "read_metis",
    "parse_metis",
    "write_edge_list",
    "read_edge_list",
    "write_json",
    "read_json",
    "graph_to_payload",
    "graph_from_payload",
]

PathLike = Union[str, Path]


def write_metis(graph: CSRGraph, path: PathLike) -> None:
    """Write a graph in METIS format (1-based adjacency lists).

    Header flags: ``fmt=11`` when both node and edge weights are present,
    ``fmt=1`` for edge weights only, ``fmt=10`` for node weights only,
    no flag when all weights are 1.  Integer weights are required by the
    format; non-integer weights raise :class:`GraphFormatError`.
    """
    has_nw = not np.all(graph.node_weights == 1)
    has_ew = not np.all(graph.edge_weights == 1)
    for arr, what in ((graph.node_weights, "node"), (graph.edge_weights, "edge")):
        if not np.allclose(arr, np.round(arr)):
            raise GraphFormatError(f"METIS format requires integer {what} weights")
    lines = []
    fmt = f"{int(has_nw)}{int(has_ew)}"
    header = f"{graph.n_nodes} {graph.n_edges}"
    if fmt != "00":
        header += f" {fmt}"
    lines.append(header)
    for node in range(graph.n_nodes):
        parts: list[str] = []
        if has_nw:
            parts.append(str(int(graph.node_weights[node])))
        lo, hi = graph.indptr[node], graph.indptr[node + 1]
        for nbr, w in zip(graph.indices[lo:hi], graph.adj_weights[lo:hi]):
            parts.append(str(int(nbr) + 1))
            if has_ew:
                parts.append(str(int(w)))
        lines.append(" ".join(parts))
    Path(path).write_text("\n".join(lines) + "\n")


def _metis_int(token: str, lineno: int, what: str) -> int:
    try:
        return int(token)
    except ValueError:
        raise GraphFormatError(
            f"line {lineno}: {what} must be an integer, got {token!r}"
        ) from None


def _metis_number(token: str, lineno: int, what: str) -> float:
    """Parse a weight token: finite and non-negative, or a clear error.

    ``float()`` happily accepts ``nan``/``inf``, which would silently
    poison every downstream cut/fitness comparison — untrusted bytes
    must fail here, with the line number, instead."""
    try:
        value = float(token)
    except ValueError:
        raise GraphFormatError(
            f"line {lineno}: {what} must be a number, got {token!r}"
        ) from None
    if not np.isfinite(value) or value < 0:
        raise GraphFormatError(
            f"line {lineno}: {what} must be finite and non-negative, "
            f"got {token!r}"
        )
    return value


def parse_metis(text: str) -> CSRGraph:
    """Parse METIS ``.graph`` text into a :class:`CSRGraph`.

    This is the strict form used for untrusted bytes (e.g. graphs
    arriving over the service endpoint): every malformed construct —
    non-numeric tokens, a truncated file, trailing garbage, out-of-range
    neighbors — raises :class:`GraphFormatError` naming the offending
    1-based line.  ``%`` comment lines are skipped; a *blank* line is a
    vertex with an empty adjacency list (an isolated node), per the
    METIS format.
    """
    # (lineno, tokens) for every non-comment line; blank lines kept so
    # isolated vertices parse and truncation errors point at real lines
    rows: list[tuple[int, list[str]]] = []
    header: Optional[tuple[int, list[str]]] = None
    for lineno, line in enumerate(text.splitlines(), start=1):
        if line.lstrip().startswith("%"):
            continue
        if header is None:
            if not line.strip():
                continue  # leading blank lines before the header
            header = (lineno, line.split())
        else:
            rows.append((lineno, line.split()))
    if header is None:
        raise GraphFormatError("empty METIS file")
    hline, htok = header
    if len(htok) < 2 or len(htok) > 4:
        raise GraphFormatError(
            f"line {hline}: METIS header needs 2-4 fields "
            f"(nodes, edges[, fmt[, ncon]]), got {len(htok)}"
        )
    n_nodes = _metis_int(htok[0], hline, "node count")
    n_edges = _metis_int(htok[1], hline, "edge count")
    if n_nodes < 0 or n_edges < 0:
        raise GraphFormatError(
            f"line {hline}: node/edge counts must be non-negative"
        )
    fmt = htok[2] if len(htok) > 2 else "0"
    if not fmt.isdigit():
        raise GraphFormatError(
            f"line {hline}: METIS fmt flag must be digits, got {fmt!r}"
        )
    # fmt is up to 3 digits: vertex-sizes / node-weights / edge-weights.
    # Vertex sizes and multi-constraint weights (ncon > 1) are not
    # implemented here — accepting them would silently misparse the
    # body, so the strict parser refuses instead.
    fmt = fmt.zfill(2)
    if len(fmt) > 2 and fmt[:-2].strip("0"):
        raise GraphFormatError(
            f"line {hline}: METIS vertex sizes (fmt={fmt!r}) are not supported"
        )
    if len(htok) == 4:
        ncon = _metis_int(htok[3], hline, "constraint count (ncon)")
        if ncon > 1:
            raise GraphFormatError(
                f"line {hline}: multi-constraint node weights "
                f"(ncon={ncon}) are not supported"
            )
    has_nw, has_ew = fmt[-2] == "1", fmt[-1] == "1"

    # trailing blank lines are tolerated; blank lines *among* the first
    # n_nodes rows are genuine empty adjacency lists
    while len(rows) > n_nodes and not rows[-1][1]:
        rows.pop()
    if len(rows) < n_nodes:
        last = rows[-1][0] if rows else hline
        raise GraphFormatError(
            f"truncated METIS file: header (line {hline}) declares "
            f"{n_nodes} nodes but the file ends after line {last} with "
            f"only {len(rows)} vertex lines"
        )
    if len(rows) > n_nodes:
        raise GraphFormatError(
            f"line {rows[n_nodes][0]}: unexpected extra line — header "
            f"(line {hline}) declares only {n_nodes} nodes"
        )

    us, vs, ws = [], [], []
    node_w = np.ones(n_nodes)
    for node, (lineno, tokens) in enumerate(rows):
        pos = 0
        if has_nw:
            if not tokens:
                raise GraphFormatError(
                    f"line {lineno}: node {node + 1} is missing its weight"
                )
            node_w[node] = _metis_number(
                tokens[0], lineno, f"node {node + 1} weight"
            )
            pos = 1
        step = 2 if has_ew else 1
        rest = tokens[pos:]
        if len(rest) % step:
            raise GraphFormatError(
                f"line {lineno}: node {node + 1} has a ragged adjacency "
                "list (odd token count with edge weights enabled)"
                if has_ew
                else f"line {lineno}: node {node + 1} has a ragged adjacency list"
            )
        for i in range(0, len(rest), step):
            nbr = _metis_int(rest[i], lineno, f"node {node + 1} neighbor") - 1
            if not 0 <= nbr < n_nodes:
                raise GraphFormatError(
                    f"line {lineno}: node {node + 1} lists neighbor "
                    f"{nbr + 1}, outside 1..{n_nodes}"
                )
            if nbr == node:
                raise GraphFormatError(
                    f"line {lineno}: node {node + 1} lists itself as a neighbor"
                )
            if nbr > node:  # each undirected edge listed from both sides
                us.append(node)
                vs.append(nbr)
                ws.append(
                    _metis_number(
                        rest[i + 1], lineno, f"node {node + 1} edge weight"
                    )
                    if has_ew
                    else 1.0
                )
    g = CSRGraph(n_nodes, us, vs, ws, node_w)
    if g.n_edges != n_edges:
        raise GraphFormatError(
            f"METIS header declares {n_edges} edges but adjacency lists give {g.n_edges}"
        )
    return g


def read_metis(path: PathLike) -> CSRGraph:
    """Read a METIS-format graph file (see :func:`parse_metis`)."""
    return parse_metis(Path(path).read_text())


def write_edge_list(graph: CSRGraph, path: PathLike) -> None:
    """Write ``u v weight`` lines (0-based) preceded by a ``# nodes`` header."""
    lines = [f"# nodes {graph.n_nodes}"]
    lines += [f"{u} {v} {w:g}" for u, v, w in graph.iter_edges()]
    Path(path).write_text("\n".join(lines) + "\n")


def read_edge_list(path: PathLike) -> CSRGraph:
    """Read the edge-list format produced by :func:`write_edge_list`."""
    n_nodes: Optional[int] = None
    us, vs, ws = [], [], []
    for raw in Path(path).read_text().splitlines():
        line = raw.strip()
        if not line:
            continue
        if line.startswith("#"):
            tokens = line[1:].split()
            if len(tokens) == 2 and tokens[0] == "nodes":
                n_nodes = int(tokens[1])
            continue
        tokens = line.split()
        if len(tokens) not in (2, 3):
            raise GraphFormatError(f"bad edge line: {raw!r}")
        us.append(int(tokens[0]))
        vs.append(int(tokens[1]))
        ws.append(float(tokens[2]) if len(tokens) == 3 else 1.0)
    if n_nodes is None:
        n_nodes = (max(max(us, default=-1), max(vs, default=-1)) + 1) if us else 0
    return CSRGraph(n_nodes, us, vs, ws)


def graph_to_payload(graph: CSRGraph) -> dict:
    """JSON-serializable dict form of a graph (weights + coordinates).

    This is both the on-disk format of :func:`write_json` and the wire
    format graphs travel in over the partition service.
    """
    return {
        "n_nodes": graph.n_nodes,
        "edges_u": graph.edges_u.tolist(),
        "edges_v": graph.edges_v.tolist(),
        "edge_weights": graph.edge_weights.tolist(),
        "node_weights": graph.node_weights.tolist(),
        "coords": None if graph.coords is None else graph.coords.tolist(),
    }


def graph_from_payload(payload: dict) -> CSRGraph:
    """Rebuild a graph from :func:`graph_to_payload` output.

    Malformed payloads (missing keys, wrong types, invalid structure)
    raise :class:`GraphFormatError` — the payload may come from
    untrusted bytes on the service endpoint.
    """
    if not isinstance(payload, dict):
        raise GraphFormatError(
            f"graph payload must be an object, got {type(payload).__name__}"
        )
    try:
        coords = payload.get("coords")
        graph = CSRGraph(
            payload["n_nodes"],
            payload["edges_u"],
            payload["edges_v"],
            payload["edge_weights"],
            payload["node_weights"],
            coords=None if coords is None else np.array(coords, dtype=np.float64),
        )
    except KeyError as exc:
        raise GraphFormatError(f"graph payload missing key {exc}") from exc
    except (TypeError, ValueError) as exc:
        raise GraphFormatError(f"bad graph payload: {exc}") from exc
    # json.loads accepts NaN/Infinity literals, and CSRGraph's own
    # negativity checks pass NaN through (nan < 0 is False) — reject
    # non-finite weights here so wire payloads cannot poison cut math
    if not (
        np.all(np.isfinite(graph.edge_weights))
        and np.all(np.isfinite(graph.node_weights))
    ):
        raise GraphFormatError("graph payload weights must be finite")
    return graph


def write_json(graph: CSRGraph, path: PathLike) -> None:
    """Write the full graph (weights + coordinates) as JSON."""
    Path(path).write_text(json.dumps(graph_to_payload(graph)))


def read_json(path: PathLike) -> CSRGraph:
    """Read a graph produced by :func:`write_json`."""
    try:
        payload = json.loads(Path(path).read_text())
    except json.JSONDecodeError as exc:
        raise GraphFormatError(f"bad JSON graph file: {exc}") from exc
    return graph_from_payload(payload)
