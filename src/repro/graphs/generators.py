"""Synthetic graph generators.

The structured generators (grids, tori, hypercubes) give exactly
predictable cut sizes for testing; the geometric generators approximate
the unstructured computational meshes the paper partitions (see
:mod:`repro.graphs.meshes` for the paper-specific workload suite).
All generators attach coordinates where a natural geometry exists, which
the coordinate-based partitioners (IBP, RCB) require.
"""

from __future__ import annotations

import itertools
from typing import Optional

import numpy as np

from ..errors import GraphError
from ..rng import SeedLike, as_generator
from .csr import CSRGraph

__all__ = [
    "path_graph",
    "cycle_graph",
    "complete_graph",
    "star_graph",
    "grid2d",
    "grid3d",
    "torus2d",
    "hypercube_graph",
    "random_geometric",
    "delaunay_mesh",
    "caveman_graph",
    "random_regular",
    "binary_tree",
]


def path_graph(n: int) -> CSRGraph:
    """Path ``0-1-...-(n-1)`` with unit coordinates along the x axis."""
    if n < 0:
        raise GraphError("n must be non-negative")
    idx = np.arange(max(n - 1, 0))
    coords = np.column_stack([np.arange(n, dtype=float), np.zeros(n)])
    return CSRGraph(n, idx, idx + 1, coords=coords)


def cycle_graph(n: int) -> CSRGraph:
    """Cycle on ``n >= 3`` nodes, laid out on the unit circle."""
    if n < 3:
        raise GraphError("a cycle needs at least 3 nodes")
    idx = np.arange(n)
    theta = 2 * np.pi * idx / n
    coords = np.column_stack([np.cos(theta), np.sin(theta)])
    return CSRGraph(n, idx, (idx + 1) % n, coords=coords)


def complete_graph(n: int) -> CSRGraph:
    """Complete graph K_n."""
    pairs = np.array(list(itertools.combinations(range(n), 2)), dtype=np.int64)
    if pairs.size == 0:
        pairs = pairs.reshape(0, 2)
    return CSRGraph(n, pairs[:, 0], pairs[:, 1])


def star_graph(n_leaves: int) -> CSRGraph:
    """Star: node 0 is the hub, nodes ``1..n_leaves`` are leaves."""
    if n_leaves < 0:
        raise GraphError("n_leaves must be non-negative")
    leaves = np.arange(1, n_leaves + 1)
    return CSRGraph(n_leaves + 1, np.zeros(n_leaves, dtype=np.int64), leaves)


def grid2d(rows: int, cols: int) -> CSRGraph:
    """4-connected ``rows x cols`` grid in row-major node order.

    Node ``(r, c)`` has id ``r * cols + c`` and coordinate ``(c, r)`` —
    matching the pixel-indexing convention of the paper's appendix.
    """
    if rows <= 0 or cols <= 0:
        raise GraphError("grid dimensions must be positive")
    ids = np.arange(rows * cols).reshape(rows, cols)
    right = np.column_stack([ids[:, :-1].ravel(), ids[:, 1:].ravel()])
    down = np.column_stack([ids[:-1, :].ravel(), ids[1:, :].ravel()])
    edges = np.vstack([right, down])
    rr, cc = np.divmod(np.arange(rows * cols), cols)
    coords = np.column_stack([cc.astype(float), rr.astype(float)])
    return CSRGraph(rows * cols, edges[:, 0], edges[:, 1], coords=coords)


def grid3d(nx: int, ny: int, nz: int) -> CSRGraph:
    """6-connected 3-D grid; node ``(i,j,k)`` has id ``(i*ny + j)*nz + k``."""
    if min(nx, ny, nz) <= 0:
        raise GraphError("grid dimensions must be positive")
    ids = np.arange(nx * ny * nz).reshape(nx, ny, nz)
    e = []
    e.append(np.column_stack([ids[:-1].ravel(), ids[1:].ravel()]))
    e.append(np.column_stack([ids[:, :-1].ravel(), ids[:, 1:].ravel()]))
    e.append(np.column_stack([ids[:, :, :-1].ravel(), ids[:, :, 1:].ravel()]))
    edges = np.vstack(e)
    i, rem = np.divmod(np.arange(nx * ny * nz), ny * nz)
    j, k = np.divmod(rem, nz)
    coords = np.column_stack([i, j, k]).astype(float)
    return CSRGraph(nx * ny * nz, edges[:, 0], edges[:, 1], coords=coords)


def torus2d(rows: int, cols: int) -> CSRGraph:
    """2-D torus (grid with wraparound edges); needs ``rows, cols >= 3``."""
    if rows < 3 or cols < 3:
        raise GraphError("torus dimensions must be >= 3 to avoid parallel edges")
    ids = np.arange(rows * cols).reshape(rows, cols)
    right = np.column_stack([ids.ravel(), np.roll(ids, -1, axis=1).ravel()])
    down = np.column_stack([ids.ravel(), np.roll(ids, -1, axis=0).ravel()])
    edges = np.vstack([right, down])
    rr, cc = np.divmod(np.arange(rows * cols), cols)
    coords = np.column_stack([cc.astype(float), rr.astype(float)])
    return CSRGraph(rows * cols, edges[:, 0], edges[:, 1], coords=coords)


def hypercube_graph(dim: int) -> CSRGraph:
    """``dim``-dimensional boolean hypercube on ``2**dim`` nodes.

    This is also the DPGA island topology used in the paper's experiments
    (16 subpopulations = 4-D hypercube).
    """
    if dim < 0:
        raise GraphError("dimension must be non-negative")
    n = 1 << dim
    nodes = np.arange(n)
    us, vs = [], []
    for bit in range(dim):
        mask = (nodes >> bit) & 1
        lower = nodes[mask == 0]
        us.append(lower)
        vs.append(lower | (1 << bit))
    if dim == 0:
        return CSRGraph(1, [], [])
    return CSRGraph(n, np.concatenate(us), np.concatenate(vs))


def random_geometric(
    n: int, radius: float, seed: SeedLike = None, dim: int = 2
) -> CSRGraph:
    """Random geometric graph: points in the unit cube, edges within ``radius``."""
    if n < 0:
        raise GraphError("n must be non-negative")
    if radius < 0:
        raise GraphError("radius must be non-negative")
    rng = as_generator(seed)
    pts = rng.random((n, dim))
    if n == 0:
        return CSRGraph(0, [], [], coords=pts)
    from scipy.spatial import cKDTree

    tree = cKDTree(pts)
    pairs = tree.query_pairs(radius, output_type="ndarray")
    if pairs.size == 0:
        pairs = pairs.reshape(0, 2)
    return CSRGraph(n, pairs[:, 0], pairs[:, 1], coords=pts)


def delaunay_mesh(points: np.ndarray) -> CSRGraph:
    """Planar triangulation of the given 2-D points (FEM-style mesh).

    The edge set is the union of all Delaunay triangle edges; this is the
    builder behind the paper-scale workload meshes.
    """
    pts = np.asarray(points, dtype=float)
    if pts.ndim != 2 or pts.shape[1] != 2:
        raise GraphError(f"points must have shape (n, 2), got {pts.shape}")
    if pts.shape[0] < 3:
        raise GraphError("Delaunay triangulation needs at least 3 points")
    from scipy.spatial import Delaunay

    tri = Delaunay(pts)
    simplices = tri.simplices
    edges = np.vstack(
        [simplices[:, [0, 1]], simplices[:, [1, 2]], simplices[:, [0, 2]]]
    )
    # adjacent triangles share edges; deduplicate so every mesh edge has
    # unit weight (CSRGraph would otherwise merge duplicates by summing)
    edges = np.unique(np.sort(edges, axis=1), axis=0)
    return CSRGraph(pts.shape[0], edges[:, 0], edges[:, 1], coords=pts)


def caveman_graph(n_cliques: int, clique_size: int) -> CSRGraph:
    """Connected caveman graph: cliques chained in a ring by single edges.

    A canonical "obvious best partition" structure for sanity-checking
    partitioners: cutting the ring links is optimal.
    """
    if n_cliques < 1 or clique_size < 2:
        raise GraphError("need n_cliques >= 1 and clique_size >= 2")
    us, vs = [], []
    for c in range(n_cliques):
        base = c * clique_size
        for i, j in itertools.combinations(range(clique_size), 2):
            us.append(base + i)
            vs.append(base + j)
    if n_cliques > 1:
        for c in range(n_cliques):
            a = c * clique_size + clique_size - 1
            b = ((c + 1) % n_cliques) * clique_size
            if n_cliques == 2 and c == 1:
                break  # avoid the duplicate second link between two cliques
            us.append(a)
            vs.append(b)
    return CSRGraph(n_cliques * clique_size, us, vs)


def random_regular(n: int, degree: int, seed: SeedLike = None) -> CSRGraph:
    """Random ``degree``-regular graph via networkx (coordinate-free)."""
    import networkx as nx

    if n * degree % 2 != 0:
        raise GraphError("n * degree must be even for a regular graph")
    rng = as_generator(seed)
    g = nx.random_regular_graph(degree, n, seed=int(rng.integers(2**31)))
    edges = np.array(g.edges(), dtype=np.int64)
    if edges.size == 0:
        edges = edges.reshape(0, 2)
    return CSRGraph(n, edges[:, 0], edges[:, 1])


def binary_tree(depth: int) -> CSRGraph:
    """Complete binary tree of the given depth (root = node 0)."""
    if depth < 0:
        raise GraphError("depth must be non-negative")
    n = (1 << (depth + 1)) - 1
    children = np.arange(1, n)
    parents = (children - 1) // 2
    return CSRGraph(n, parents, children)
