"""Structural operations on :class:`CSRGraph`.

These are the graph-theory utilities the partitioners lean on: connected
components (recursive graph bisection, validation), BFS (graph-distance
bisection), Laplacians (spectral bisection), and subgraph extraction
(recursive partitioners recurse on the half-graphs).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..errors import GraphError
from .csr import CSRGraph

__all__ = [
    "connected_components",
    "is_connected",
    "bfs_order",
    "bfs_distances",
    "laplacian",
    "adjacency_matrix",
    "subgraph",
    "degree_histogram",
    "peripheral_node",
]


def connected_components(graph: CSRGraph) -> np.ndarray:
    """Component label per node (labels are 0-based, order of discovery)."""
    n = graph.n_nodes
    labels = np.full(n, -1, dtype=np.int64)
    current = 0
    for start in range(n):
        if labels[start] != -1:
            continue
        # iterative BFS with a frontier array (vectorized expansion)
        labels[start] = current
        frontier = np.array([start], dtype=np.int64)
        while frontier.size:
            nxt = []
            for u in frontier:
                nbrs = graph.neighbors(u)
                fresh = nbrs[labels[nbrs] == -1]
                labels[fresh] = current
                if fresh.size:
                    nxt.append(fresh)
            frontier = np.concatenate(nxt) if nxt else np.empty(0, dtype=np.int64)
        current += 1
    return labels


def is_connected(graph: CSRGraph) -> bool:
    """True iff the graph has exactly one connected component (or none)."""
    if graph.n_nodes <= 1:
        return True
    return int(connected_components(graph).max()) == 0


def bfs_order(graph: CSRGraph, start: int) -> np.ndarray:
    """Nodes in BFS discovery order from ``start`` (unreached nodes omitted)."""
    if not 0 <= start < graph.n_nodes:
        raise GraphError(f"start node {start} out of range")
    seen = np.zeros(graph.n_nodes, dtype=bool)
    seen[start] = True
    order = [np.array([start], dtype=np.int64)]
    frontier = order[0]
    while frontier.size:
        nxt = []
        for u in frontier:
            nbrs = graph.neighbors(u)
            fresh = nbrs[~seen[nbrs]]
            seen[fresh] = True
            if fresh.size:
                nxt.append(fresh)
        frontier = np.concatenate(nxt) if nxt else np.empty(0, dtype=np.int64)
        if frontier.size:
            order.append(frontier)
    return np.concatenate(order)


def bfs_distances(graph: CSRGraph, start: int) -> np.ndarray:
    """Hop distance from ``start`` to every node (-1 when unreachable)."""
    if not 0 <= start < graph.n_nodes:
        raise GraphError(f"start node {start} out of range")
    dist = np.full(graph.n_nodes, -1, dtype=np.int64)
    dist[start] = 0
    frontier = np.array([start], dtype=np.int64)
    level = 0
    while frontier.size:
        level += 1
        nxt = []
        for u in frontier:
            nbrs = graph.neighbors(u)
            fresh = nbrs[dist[nbrs] == -1]
            dist[fresh] = level
            if fresh.size:
                nxt.append(fresh)
        frontier = np.concatenate(nxt) if nxt else np.empty(0, dtype=np.int64)
    return dist


def laplacian(graph: CSRGraph, dense: bool = False):
    """Weighted graph Laplacian ``L = D - A``.

    Returns a scipy CSR matrix, or an ndarray when ``dense=True`` (the
    dense path is what the spectral bisection uses at paper scale).
    """
    from .build import to_scipy_sparse
    import scipy.sparse as sp

    adj = to_scipy_sparse(graph)
    deg = np.asarray(adj.sum(axis=1)).ravel()
    lap = sp.diags(deg) - adj
    if dense:
        return lap.toarray()
    return sp.csr_matrix(lap)


def adjacency_matrix(graph: CSRGraph, dense: bool = False):
    """Symmetric weighted adjacency matrix."""
    from .build import to_scipy_sparse

    adj = to_scipy_sparse(graph)
    return adj.toarray() if dense else adj


def subgraph(graph: CSRGraph, nodes: np.ndarray) -> tuple[CSRGraph, np.ndarray]:
    """Induced subgraph on ``nodes``.

    Returns ``(sub, mapping)`` where ``mapping[i]`` is the original id of
    subgraph node ``i``.  Node weights, edge weights, and coordinates are
    carried over.
    """
    nodes = np.asarray(nodes, dtype=np.int64)
    if nodes.size and (nodes.min() < 0 or nodes.max() >= graph.n_nodes):
        raise GraphError("subgraph node out of range")
    if np.unique(nodes).size != nodes.size:
        raise GraphError("subgraph node list contains duplicates")
    inv = np.full(graph.n_nodes, -1, dtype=np.int64)
    inv[nodes] = np.arange(nodes.size)
    keep = (inv[graph.edges_u] >= 0) & (inv[graph.edges_v] >= 0)
    sub = CSRGraph(
        nodes.size,
        inv[graph.edges_u[keep]],
        inv[graph.edges_v[keep]],
        graph.edge_weights[keep],
        graph.node_weights[nodes],
        coords=None if graph.coords is None else graph.coords[nodes],
    )
    return sub, nodes.copy()


def degree_histogram(graph: CSRGraph) -> np.ndarray:
    """Counts of nodes by degree; index = degree."""
    if graph.n_nodes == 0:
        return np.zeros(0, dtype=np.int64)
    return np.bincount(graph.degree())


def peripheral_node(graph: CSRGraph, start: int = 0) -> int:
    """A pseudo-peripheral node found by repeated farthest-BFS.

    Recursive graph bisection starts its BFS sweep here to cut the mesh
    across its short axis.
    """
    if graph.n_nodes == 0:
        raise GraphError("graph has no nodes")
    node = start
    last_ecc = -1
    for _ in range(graph.n_nodes):  # converges in a few sweeps
        dist = bfs_distances(graph, node)
        reach = dist >= 0
        ecc = int(dist[reach].max())
        if ecc <= last_ecc:
            return node
        last_ecc = ecc
        node = int(np.flatnonzero(reach & (dist == ecc))[0])
    return node
