"""Paper-scale unstructured mesh workloads.

The SC'94 paper evaluates on unnamed 2-D unstructured meshes with 78–309
nodes (plus incremental variants).  Those graphs were never published, so
— per the reproduction's substitution rule (DESIGN.md §4) — we generate
deterministic stand-ins with the same character: planar Delaunay
triangulations of well-spaced ("blue noise") point sets in the unit
square.  Like FEM meshes these have bounded degree (~6 average), strong
geometric locality, and small separators, which is exactly the structure
KNUX's neighbor-derived bias probabilities exploit.

:data:`PAPER_SIZES` lists every base node count used in Tables 1–6;
:func:`paper_mesh` builds the canonical instance for a node count.
"""

from __future__ import annotations

import numpy as np

from ..errors import GraphError
from ..rng import SeedLike, as_generator
from .csr import CSRGraph
from .generators import delaunay_mesh

__all__ = [
    "PAPER_SIZES",
    "INCREMENTAL_CASES",
    "blue_noise_points",
    "mesh_graph",
    "paper_mesh",
]

#: Every base graph size appearing in the paper's Tables 1-6.
PAPER_SIZES: tuple[int, ...] = (78, 88, 98, 118, 139, 144, 167, 183, 213, 243, 249, 279, 309)

#: (base_nodes, added_nodes) pairs of the incremental experiments
#: (Tables 3 and 6).
INCREMENTAL_CASES: tuple[tuple[int, int], ...] = (
    (78, 10),
    (78, 20),
    (118, 21),
    (118, 41),
    (183, 30),
    (183, 60),
    (249, 30),
    (249, 60),
)

#: Seed namespace so paper meshes are stable across library versions.
_MESH_SEED_BASE = 19940910  # the paper's revision date, 1994-09-10


def blue_noise_points(
    n: int,
    seed: SeedLike = None,
    candidates: int = 12,
) -> np.ndarray:
    """Generate ``n`` well-spaced points in the unit square.

    Uses Mitchell's best-candidate algorithm: each new point is the
    candidate farthest from all previously accepted points.  This gives
    FEM-mesh-like vertex spacing without clusters or big holes, at
    O(n^2 * candidates) cost — fine for the paper's sub-thousand-node
    scale.
    """
    if n < 0:
        raise GraphError("n must be non-negative")
    rng = as_generator(seed)
    if n == 0:
        return np.zeros((0, 2))
    pts = np.empty((n, 2))
    pts[0] = rng.random(2)
    for i in range(1, n):
        cand = rng.random((candidates, 2))
        # distance of each candidate to its nearest accepted point
        d = np.min(
            np.sum((cand[:, None, :] - pts[None, :i, :]) ** 2, axis=2), axis=1
        )
        pts[i] = cand[np.argmax(d)]
    return pts


def mesh_graph(n: int, seed: SeedLike = None, candidates: int = 12) -> CSRGraph:
    """Delaunay mesh over ``n`` blue-noise points (arbitrary seed)."""
    if n < 3:
        raise GraphError("a mesh needs at least 3 nodes")
    pts = blue_noise_points(n, seed=seed, candidates=candidates)
    return delaunay_mesh(pts)


def paper_mesh(n: int) -> CSRGraph:
    """The canonical reproduction workload mesh with ``n`` nodes.

    Deterministic: the same ``n`` always yields the identical graph, so
    experiment tables are reproducible bit-for-bit.  ``n`` need not be a
    member of :data:`PAPER_SIZES`, but those are the sizes the benchmark
    harness uses.
    """
    return mesh_graph(n, seed=_MESH_SEED_BASE + n)
