"""Constructors bridging external graph representations to :class:`CSRGraph`."""

from __future__ import annotations

from typing import Iterable, Mapping, Optional, Sequence

import numpy as np

from ..errors import GraphError
from .csr import CSRGraph

__all__ = [
    "from_edge_list",
    "from_adjacency_dict",
    "from_networkx",
    "to_networkx",
    "from_scipy_sparse",
    "to_scipy_sparse",
]


def from_edge_list(
    n_nodes: int,
    edges: Iterable[tuple[int, int]] | np.ndarray,
    edge_weights: Optional[Sequence[float]] = None,
    node_weights: Optional[Sequence[float]] = None,
    coords: Optional[np.ndarray] = None,
) -> CSRGraph:
    """Build a graph from an iterable of ``(u, v)`` pairs."""
    arr = np.asarray(list(edges) if not isinstance(edges, np.ndarray) else edges)
    if arr.size == 0:
        arr = arr.reshape(0, 2)
    if arr.ndim != 2 or arr.shape[1] != 2:
        raise GraphError(f"edge list must have shape (m, 2), got {arr.shape}")
    return CSRGraph(
        n_nodes, arr[:, 0], arr[:, 1], edge_weights, node_weights, coords=coords
    )


def from_adjacency_dict(
    adjacency: Mapping[int, Iterable[int]],
    node_weights: Optional[Sequence[float]] = None,
    coords: Optional[np.ndarray] = None,
) -> CSRGraph:
    """Build a graph from ``{node: [neighbors...]}``.

    Node ids must be integers ``0..n-1``; edges may be listed from either
    or both endpoints (duplicates merge).
    """
    if not adjacency:
        return CSRGraph(0, [], [])
    keys = sorted(adjacency)
    n = max(keys) + 1
    us, vs = [], []
    for u, nbrs in adjacency.items():
        for v in nbrs:
            if u == v:
                raise GraphError(f"self-loop on node {u}")
            us.append(min(u, v))
            vs.append(max(u, v))
    return CSRGraph(n, us, vs, None, node_weights, coords=coords)


def from_networkx(nxgraph, weight_attr: str = "weight") -> CSRGraph:
    """Convert a :class:`networkx.Graph` to a :class:`CSRGraph`.

    Nodes are relabelled to ``0..n-1`` in sorted order (mixed-type node
    labels fall back to insertion order).  Edge weights come from
    ``weight_attr`` (default ``"weight"``, missing → 1.0); node weights
    from a ``"weight"`` node attribute; ``"pos"`` node attributes become
    coordinates when present on every node.
    """
    import networkx as nx

    if nxgraph.is_directed():
        raise GraphError("directed graphs are not supported; use .to_undirected()")
    try:
        nodes = sorted(nxgraph.nodes())
    except TypeError:
        nodes = list(nxgraph.nodes())
    index = {node: i for i, node in enumerate(nodes)}
    us, vs, ws = [], [], []
    for u, v, data in nxgraph.edges(data=True):
        if u == v:
            continue  # drop self-loops; they never cross a cut
        us.append(index[u])
        vs.append(index[v])
        ws.append(float(data.get(weight_attr, 1.0)))
    node_w = np.array(
        [float(nxgraph.nodes[node].get("weight", 1.0)) for node in nodes]
    )
    coords = None
    if all("pos" in nxgraph.nodes[node] for node in nodes) and nodes:
        coords = np.array([np.asarray(nxgraph.nodes[node]["pos"], float) for node in nodes])
    return CSRGraph(len(nodes), us, vs, ws, node_w, coords=coords)


def to_networkx(graph: CSRGraph):
    """Convert back to :class:`networkx.Graph` (weights and coords kept)."""
    import networkx as nx

    g = nx.Graph()
    for i in range(graph.n_nodes):
        attrs = {"weight": float(graph.node_weights[i])}
        if graph.coords is not None:
            attrs["pos"] = tuple(graph.coords[i])
        g.add_node(i, **attrs)
    for u, v, w in graph.iter_edges():
        g.add_edge(u, v, weight=w)
    return g


def from_scipy_sparse(matrix, coords: Optional[np.ndarray] = None) -> CSRGraph:
    """Build a graph from a symmetric scipy sparse adjacency matrix."""
    import scipy.sparse as sp

    m = sp.coo_matrix(matrix)
    if m.shape[0] != m.shape[1]:
        raise GraphError(f"adjacency matrix must be square, got {m.shape}")
    mask = m.row < m.col
    return CSRGraph(
        m.shape[0], m.row[mask], m.col[mask], m.data[mask], coords=coords
    )


def to_scipy_sparse(graph: CSRGraph):
    """Symmetric CSR adjacency matrix with edge weights as entries."""
    import scipy.sparse as sp

    rows = np.concatenate([graph.edges_u, graph.edges_v])
    cols = np.concatenate([graph.edges_v, graph.edges_u])
    data = np.concatenate([graph.edge_weights, graph.edge_weights])
    return sp.csr_matrix(
        (data, (rows, cols)), shape=(graph.n_nodes, graph.n_nodes)
    )
