"""Command-line interface.

::

    repro-partition partition GRAPH.metis -k 8 [--method dknux|rsb|ibp|...]
    repro-partition experiment table1 [--mode quick|full] [--seed N]
    repro-partition workloads
    repro-partition info GRAPH.metis
    repro-partition serve [--host H] [--port P] [--workers N]
                          [--shards S] [--process-workers M]
                          [--attach-shard HOST:PORT ...] [--snapshot-dir D]
                          [--trace] [--trace-sample R] [--trace-jsonl F]
                          [--log-json]
    repro-partition serve --shard-listen HOST:PORT  (remote shard worker)
    repro-partition submit GRAPH.metis -k 8 [--url http://127.0.0.1:8157]
    repro-partition ring status|resize|eject|readmit
                         [--url U] [-n N] [--shard I]

``python -m repro`` is an alias for the same entry point.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

import numpy as np

__all__ = ["main", "build_parser"]

METHODS = ("dknux", "rsb", "ibp", "rcb", "rgb", "kl", "greedy", "random", "mlga")

#: methods the service endpoint accepts (see repro.service.models)
SERVICE_CLI_METHODS = (
    "dknux", "greedy", "rgb", "kl", "random", "rsb", "portfolio",
)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-partition",
        description=(
            "Graph partitioning with genetic algorithms (SC'94 reproduction)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_part = sub.add_parser("partition", help="partition a METIS-format graph")
    p_part.add_argument("graph", help="path to a METIS .graph file")
    p_part.add_argument("-k", "--parts", type=int, required=True)
    p_part.add_argument("--method", choices=METHODS, default="dknux")
    p_part.add_argument(
        "--fitness", choices=("fitness1", "fitness2"), default="fitness1"
    )
    p_part.add_argument("--seed", type=int, default=0)
    p_part.add_argument(
        "--output", help="write the assignment (one label per line) here"
    )

    p_exp = sub.add_parser("experiment", help="run a paper table")
    p_exp.add_argument(
        "table", help="table id (table1..table6) or 'all'"
    )
    p_exp.add_argument("--mode", choices=("quick", "full"), default="quick")
    p_exp.add_argument("--seed", type=int, default=0)

    p_conv = sub.add_parser(
        "convergence", help="regenerate the operator-convergence figure"
    )
    p_conv.add_argument("--size", type=int, default=144)
    p_conv.add_argument("-k", "--parts", type=int, default=4)
    p_conv.add_argument("--runs", type=int, default=3)
    p_conv.add_argument("--generations", type=int, default=60)
    p_conv.add_argument("--seed", type=int, default=0)

    sub.add_parser("workloads", help="list the canonical workload graphs")

    p_info = sub.add_parser("info", help="print statistics of a graph file")
    p_info.add_argument("graph", help="path to a METIS .graph file")

    p_serve = sub.add_parser(
        "serve", help="run the partition service HTTP endpoint"
    )
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument("--port", type=int, default=8157)
    p_serve.add_argument(
        "--workers", type=int, default=2,
        help="pinned worker threads executing jobs (per shard)",
    )
    p_serve.add_argument(
        "--cache-mb", type=int, default=64,
        help="byte budget of the content-addressed caches (per shard)",
    )
    p_serve.add_argument(
        "--shards", type=int, default=0,
        help="digest-sharded multi-process serving: N worker service "
             "processes (0 = single process)",
    )
    p_serve.add_argument(
        "--process-workers", type=int, default=0,
        help="pinned worker processes for long GA runs (single-process "
             "mode only; ignored with --shards)",
    )
    p_serve.add_argument(
        "--process-threshold", type=float, default=None,
        help="cost floor (nodes x population x generations) routing a "
             "dknux run to a process worker",
    )
    p_serve.add_argument(
        "--racing-portfolio", action="store_true",
        help="race portfolio legs concurrently, cancelling losers",
    )
    p_serve.add_argument(
        "--shard-listen", metavar="HOST:PORT", default=None,
        help="run a standalone shard worker serving the shard RPC on "
             "this address instead of an HTTP endpoint (fronts attach "
             "it with --attach-shard)",
    )
    p_serve.add_argument(
        "--attach-shard", metavar="HOST:PORT", action="append", default=[],
        help="attach a running --shard-listen worker as one shard "
             "(repeatable; replaces --shards; the fleet width is the "
             "number of attached addresses)",
    )
    p_serve.add_argument(
        "--snapshot-dir", default=None,
        help="durable directory for session failover snapshots (default: "
             "a private temporary store for local shards)",
    )
    p_serve.add_argument(
        "--snapshot-interval", type=float, default=0.0,
        help="seconds between periodic session snapshot passes on top "
             "of the on-commit writes (0 = on-commit only)",
    )
    p_serve.add_argument(
        "--probe-interval", type=float, default=0.0,
        help="seconds between front-driven shard health probes; a dead "
             "remote shard is ejected from the hash ring and re-admitted "
             "when it answers again (0 = no probing; sharded fronts only)",
    )
    p_serve.add_argument(
        "--trace", action="store_true",
        help="record request spans (see README 'Observability'); on a "
             "sharded front this traces end-to-end across shards",
    )
    p_serve.add_argument(
        "--trace-sample", type=float, default=1.0,
        help="fraction of new traces to record (deterministic by "
             "trace id; propagated contexts are always recorded)",
    )
    p_serve.add_argument(
        "--trace-jsonl", default=None,
        help="append finished spans as JSON lines to this file",
    )
    p_serve.add_argument(
        "--log-json", action="store_true",
        help="emit structured JSON log records for shard lifecycle "
             "events (restarts, fail-fast, snapshot writes) on stderr",
    )
    p_serve.add_argument(
        "--front", choices=("eventloop", "thread"), default="eventloop",
        help="connection front: the selectors event loop with keep-alive "
             "and pipelining (default) or the thread-per-connection "
             "fallback (responses are byte-identical either way)",
    )

    p_ring = sub.add_parser(
        "ring",
        help="administer the hash ring of a running sharded service",
    )
    p_ring.add_argument(
        "action", choices=("status", "resize", "eject", "readmit"),
        help="status: ring description + per-shard health; resize: grow "
             "or shrink the fleet to -n shards (sessions and warm results "
             "move); eject/readmit: reversibly take --shard out of / back "
             "into the ring",
    )
    p_ring.add_argument(
        "--url", default="http://127.0.0.1:8157",
        help="base URL of a running `repro-partition serve --shards N`",
    )
    p_ring.add_argument(
        "-n", "--shards", type=int, default=None,
        help="target fleet width (resize only)",
    )
    p_ring.add_argument(
        "--shard", type=int, default=None,
        help="shard index (eject/readmit only)",
    )

    p_sub = sub.add_parser(
        "submit", help="submit a graph to a running partition service"
    )
    p_sub.add_argument("graph", help="path to a METIS .graph or .json file")
    p_sub.add_argument("-k", "--parts", type=int, required=True)
    p_sub.add_argument(
        "--method", choices=SERVICE_CLI_METHODS, default="dknux"
    )
    p_sub.add_argument(
        "--fitness", choices=("fitness1", "fitness2"), default="fitness1"
    )
    p_sub.add_argument("--seed", type=int, default=0)
    p_sub.add_argument(
        "--url", default="http://127.0.0.1:8157",
        help="base URL of a running `repro-partition serve`",
    )
    p_sub.add_argument(
        "--time-budget", type=float, default=None,
        help="seconds for --method portfolio",
    )
    p_sub.add_argument(
        "--output", help="write the assignment (one label per line) here"
    )

    return parser


def _load_graph(path: str):
    """Load METIS (default) or JSON (``.json``, carries coordinates)."""
    from .graphs.io import read_json, read_metis

    if str(path).endswith(".json"):
        return read_json(path)
    return read_metis(path)


def _run_partition(args: argparse.Namespace) -> int:
    from . import partition_graph
    from .baselines import (
        greedy_partition,
        ibp_partition,
        random_partition,
        rcb_partition,
        recursive_kl_partition,
        rgb_partition,
        rsb_partition,
    )
    from .multilevel import multilevel_ga_partition

    from .errors import GraphError

    graph = _load_graph(args.graph)
    k = args.parts
    if args.method in ("ibp", "rcb") and graph.coords is None:
        print(
            f"error: method {args.method!r} needs vertex coordinates; "
            "use a .json graph file (write_json) instead of METIS",
            file=sys.stderr,
        )
        return 1
    if args.method == "dknux":
        part = partition_graph(
            graph, k, fitness_kind=args.fitness, seed=args.seed
        )
    elif args.method == "rsb":
        part = rsb_partition(graph, k)
    elif args.method == "ibp":
        part = ibp_partition(graph, k)
    elif args.method == "rcb":
        part = rcb_partition(graph, k)
    elif args.method == "rgb":
        part = rgb_partition(graph, k)
    elif args.method == "kl":
        part = recursive_kl_partition(graph, k, seed=args.seed)
    elif args.method == "greedy":
        part = greedy_partition(graph, k, seed=args.seed)
    elif args.method == "mlga":
        part = multilevel_ga_partition(
            graph, k, fitness_kind=args.fitness, seed=args.seed
        )
    else:
        part = random_partition(graph, k, seed=args.seed)
    print(
        f"method={args.method} k={k} cut={part.cut_size:g} "
        f"worst_cut={part.max_part_cut:g} balance={part.balance_ratio:.3f} "
        f"sizes={part.part_sizes.tolist()}"
    )
    if args.output:
        np.savetxt(args.output, part.assignment, fmt="%d")
        print(f"assignment written to {args.output}")
    return 0


def _run_experiment(args: argparse.Namespace) -> int:
    from .experiments import format_table, get_spec, list_specs, run_table

    tables = list_specs() if args.table == "all" else [args.table]
    for table_id in tables:
        result = run_table(get_spec(table_id), mode=args.mode, seed=args.seed)
        print(format_table(result))
        print()
    return 0


def _run_convergence(args: argparse.Namespace) -> int:
    from .experiments import format_convergence, run_convergence

    result = run_convergence(
        size=args.size,
        n_parts=args.parts,
        n_runs=args.runs,
        generations=args.generations,
        seed=args.seed,
    )
    print(format_convergence(result))
    return 0


def _run_workloads() -> int:
    from .experiments import workload, workload_names

    print(f"{'name':>10} {'nodes':>6} {'edges':>6}")
    for name in workload_names():
        if "+" in name:
            base, added = name.split("+")
            size = int(base) + int(added)
        else:
            size = int(name)
        g = workload(size)
        print(f"{name:>10} {g.n_nodes:>6} {g.n_edges:>6}")
    return 0


def _run_info(args: argparse.Namespace) -> int:
    from .graphs.ops import connected_components, degree_histogram

    graph = _load_graph(args.graph)
    comps = int(connected_components(graph).max()) + 1 if graph.n_nodes else 0
    hist = degree_histogram(graph)
    degrees = graph.degree()
    print(f"nodes      : {graph.n_nodes}")
    print(f"edges      : {graph.n_edges}")
    print(f"components : {comps}")
    if graph.n_nodes:
        print(f"degree     : min={degrees.min()} mean={degrees.mean():.2f} max={degrees.max()}")
    print(f"node weight: total={graph.total_node_weight():g}")
    print(f"edge weight: total={graph.total_edge_weight():g}")
    print(f"degree histogram: {hist.tolist()}")
    return 0


def _run_serve(args: argparse.Namespace) -> int:  # pragma: no cover - blocking
    from .service import serve

    if args.log_json:
        from .obs.logs import configure_logging

        configure_logging()

    # front-local observability/supervision knobs: these survive the
    # attach-mode reset below because they configure the front itself
    # (see ServiceConfig.OBSERVABILITY_FIELDS), never a shard worker
    front_kwargs = dict(
        trace_enabled=args.trace,
        trace_sample=args.trace_sample,
        trace_jsonl=args.trace_jsonl,
        probe_interval_s=args.probe_interval,
    )
    kwargs = dict(
        n_workers=args.workers,
        cache_bytes=args.cache_mb << 20,
        process_workers=args.process_workers,
        racing_portfolio=args.racing_portfolio,
        snapshot_interval_s=args.snapshot_interval,
        **front_kwargs,
    )
    if args.process_threshold is not None:
        kwargs["process_threshold"] = args.process_threshold
    if args.snapshot_dir is not None:
        kwargs["snapshot_dir"] = args.snapshot_dir
    elif args.snapshot_interval > 0 and not args.shards:
        # a sharded front provisions per-shard stores itself; every
        # other serve role persists only into an explicit directory —
        # an interval with nowhere to write would be a silent no-op
        print(
            "error: --snapshot-interval needs --snapshot-dir "
            "(only --shards N provisions a snapshot store on its own)",
            file=sys.stderr,
        )
        return 1

    if args.shard_listen:
        # standalone shard worker: serves the shard RPC over a socket,
        # to be attached by a front running with --attach-shard
        from .service.sharding import ShardServer
        from .service.transport import parse_address

        if args.shards or args.attach_shard:
            print(
                "error: --shard-listen is a worker role; it cannot be "
                "combined with --shards or --attach-shard",
                file=sys.stderr,
            )
            return 1
        host, port = parse_address(args.shard_listen)
        server = ShardServer(host=host, port=port, **kwargs)
        print(
            f"repro shard worker on {server.address} "
            f"({args.workers} workers, {args.cache_mb} MiB cache) — "
            "Ctrl-C stops"
        )
        try:
            server.serve_forever()
        except KeyboardInterrupt:
            pass
        finally:
            server.close()
        return 0

    if args.shards and args.attach_shard:
        print(
            "error: pass either --shards N (local workers) or "
            "--attach-shard (remote workers), not both",
            file=sys.stderr,
        )
        return 1
    if args.attach_shard and args.snapshot_dir is not None:
        # an attach front holds no sessions itself; persistence lives on
        # the workers — silently accepting the flag would let the
        # operator believe sessions are durable when nothing is written
        print(
            "error: --snapshot-dir belongs on the shard workers; pass it "
            "to each `serve --shard-listen`, not to the attach front",
            file=sys.stderr,
        )
        return 1
    if args.attach_shard:
        # service knobs configure workers, and attached workers are
        # configured where they run — reject instead of ignoring
        if (
            args.workers != 2 or args.cache_mb != 64
            or args.process_workers or args.racing_portfolio
            or args.process_threshold is not None
            or args.snapshot_interval > 0
        ):
            print(
                "error: service options (--workers, --cache-mb, ...) "
                "configure shard workers; pass them to each "
                "`serve --shard-listen`, not to the attach front",
                file=sys.stderr,
            )
            return 1
        # tracing and probing are front-local (the attach-check ignores
        # them), so the flags survive the reset stripping worker knobs
        kwargs = dict(front_kwargs)
    if args.attach_shard:
        layout = f"{len(args.attach_shard)} attached shards"
    elif args.shards:
        layout = f"{args.shards} shards × {args.workers} workers"
    else:
        layout = f"{args.workers} workers" + (
            f" + {args.process_workers} process slots"
            if args.process_workers else ""
        )
    print(
        f"repro partition service on http://{args.host}:{args.port} "
        f"({layout}, {args.cache_mb} MiB cache) — Ctrl-C stops"
    )
    serve(
        host=args.host,
        port=args.port,
        shards=args.shards,
        attach_shards=args.attach_shard or None,
        front=args.front,
        **kwargs,
    )
    return 0


def _run_submit(args: argparse.Namespace) -> int:
    from .errors import ReproError
    from .service import HTTPServiceClient

    graph = _load_graph(args.graph)
    client = HTTPServiceClient(args.url)
    try:
        result = client.partition(
            graph,
            args.parts,
            method=args.method,
            fitness_kind=args.fitness,
            seed=args.seed,
            time_budget=args.time_budget,
        )
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    flags = "".join(
        f" {name}" for name, on in (
            ("cache-hit", result.cache_hit), ("coalesced", result.coalesced)
        ) if on
    )
    print(
        f"method={result.method} k={result.n_parts} cut={result.cut_size:g} "
        f"worst_cut={result.max_part_cut:g} "
        f"balance={result.balance_ratio:.3f} "
        f"latency={result.latency_s * 1e3:.1f}ms{flags}"
    )
    if result.portfolio:
        for leg in result.portfolio:
            if "skipped" in leg:
                print(f"  {leg['method']:>8}: skipped ({leg['skipped']})")
            else:
                print(
                    f"  {leg['method']:>8}: cut={leg['cut_size']:g} "
                    f"t={leg['seconds'] * 1e3:.1f}ms"
                )
    if args.output:
        np.savetxt(args.output, result.assignment, fmt="%d")
        print(f"assignment written to {args.output}")
    return 0


def _run_ring(args: argparse.Namespace) -> int:
    import json

    from .errors import ReproError
    from .service import HTTPServiceClient

    client = HTTPServiceClient(args.url)
    try:
        if args.action == "status":
            answer = client.ring_status()
        elif args.action == "resize":
            if args.shards is None:
                print("error: resize needs -n/--shards", file=sys.stderr)
                return 1
            answer = client.ring_resize(args.shards)
        else:  # eject / readmit
            if args.shard is None:
                print(
                    f"error: {args.action} needs --shard", file=sys.stderr
                )
                return 1
            if args.action == "eject":
                answer = client.ring_eject(args.shard)
            else:
                answer = client.ring_readmit(args.shard)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    ring = answer.get("ring", {})
    if ring:
        print(
            f"ring: epoch={ring.get('epoch')} width={ring.get('n_slots')} "
            f"members={ring.get('members')}"
        )
    for row in answer.get("health", []):
        probe = row.get("probe_ok")
        probe_s = "-" if probe is None else ("ok" if probe else "FAIL")
        print(
            f"  shard {row['shard']}: {row['state']:>10} "
            f"in_ring={row['in_ring']} probe={probe_s} "
            f"probe_failures={row['probe_failures']}"
        )
    extra = {
        k: v for k, v in answer.items() if k not in ("ring", "health")
    }
    if extra:
        print(json.dumps(extra, sort_keys=True))
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "partition":
        return _run_partition(args)
    if args.command == "experiment":
        return _run_experiment(args)
    if args.command == "convergence":
        return _run_convergence(args)
    if args.command == "workloads":
        return _run_workloads()
    if args.command == "info":
        return _run_info(args)
    if args.command == "serve":
        return _run_serve(args)
    if args.command == "submit":
        return _run_submit(args)
    if args.command == "ring":
        return _run_ring(args)
    return 2  # pragma: no cover - argparse enforces choices


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
