"""Partition quality metrics — the quantities from Section 2 of the paper.

For an assignment ``M : V -> {0..k-1}`` the paper defines, per part ``q``:

* load imbalance  ``I(q) = (sum_{v in B(q)} w_v - W/k)^2`` where ``W`` is
  the total node weight;
* communication cost ``C(q) = sum of w_e over edges with exactly one
  endpoint in q``.

Tables 1–3 report the *total cut* ``sum_q C(q) / 2`` (each cut edge is
counted from both of its parts) and Tables 4–6 report the *worst cut*
``max_q C(q)``.

Every metric has two forms: a scalar form over one assignment vector of
shape ``(n,)``, and a batch form over a population matrix of shape
``(P, n)`` which evaluates all ``P`` individuals with whole-array numpy
operations — this is the GA's inner loop, so there are no Python-level
loops over individuals or edges.

The batch forms are built on fused-index ``np.bincount`` (bin
``row * n_parts + label``), which accumulates a whole population in one
C pass instead of the much slower ``np.add.at`` scatter-add.  Work is
chunked over the population axis so peak scratch memory stays bounded
for arbitrarily large ``P × m``; the bincount metrics are bit-invariant
to chunking because every row's bins are disjoint from every other
row's.  The scalar forms delegate to the batch kernels on a single-row
batch, so the two forms are bit-identical by construction.

Every batch metric is chunk-invariant — chunk height is a pure perf
knob, never an answer knob.  For :func:`batch_cut_size` this holds
because integer-valued edge weights sum exactly in any order (the BLAS
fast path) and fractional weights take a sequential per-row
``reduceat`` whose order depends only on the edge count (see its
docstring).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..errors import PartitionError
from ..graphs.csr import CSRGraph
from ..obs.hooks import kernel_probe

__all__ = [
    "part_loads",
    "load_imbalance",
    "cut_size",
    "part_cuts",
    "max_part_cut",
    "cut_edges_mask",
    "boundary_nodes",
    "check_population",
    "batch_part_loads",
    "batch_load_imbalance",
    "batch_cut_size",
    "batch_part_cuts",
    "batch_max_part_cut",
    "balance_ratio",
]


def _check_assignment(graph: CSRGraph, assignment: np.ndarray, n_parts: int) -> np.ndarray:
    a = np.asarray(assignment)
    if a.shape != (graph.n_nodes,):
        raise PartitionError(
            f"assignment length {a.shape} does not match graph with "
            f"{graph.n_nodes} nodes"
        )
    if not np.issubdtype(a.dtype, np.integer):
        raise PartitionError(f"assignment must be integer-typed, got {a.dtype}")
    if a.size and (a.min() < 0 or a.max() >= n_parts):
        raise PartitionError(
            f"assignment labels must lie in [0, {n_parts}), "
            f"got range [{a.min()}, {a.max()}]"
        )
    return a


# ----------------------------------------------------------------------
# Scalar (single-assignment) metrics
# ----------------------------------------------------------------------

def part_loads(graph: CSRGraph, assignment: np.ndarray, n_parts: int) -> np.ndarray:
    """Total node weight per part: ``loads[q] = sum_{v in B(q)} w_v``."""
    a = _check_assignment(graph, assignment, n_parts)
    return batch_part_loads(graph, a[None, :], n_parts, validate=False)[0]


def load_imbalance(graph: CSRGraph, assignment: np.ndarray, n_parts: int) -> float:
    """The paper's quadratic imbalance penalty ``sum_q I(q)``."""
    loads = part_loads(graph, assignment, n_parts)
    avg = graph.total_node_weight() / n_parts
    return float(np.sum((loads - avg) ** 2))


def cut_edges_mask(graph: CSRGraph, assignment: np.ndarray) -> np.ndarray:
    """Boolean mask over the edge list: True where the edge is cut."""
    a = np.asarray(assignment)
    if a.shape != (graph.n_nodes,):
        raise PartitionError("assignment length mismatch")
    return a[graph.edges_u] != a[graph.edges_v]


def cut_size(graph: CSRGraph, assignment: np.ndarray) -> float:
    """Total weight of cut edges — the paper's ``sum_q C(q) / 2``."""
    mask = cut_edges_mask(graph, assignment)
    return float(graph.edge_weights[mask].sum())


def part_cuts(graph: CSRGraph, assignment: np.ndarray, n_parts: int) -> np.ndarray:
    """``C(q)`` per part: weight of edges leaving part ``q``."""
    a = _check_assignment(graph, assignment, n_parts)
    return batch_part_cuts(graph, a[None, :], n_parts, validate=False)[0]


def max_part_cut(graph: CSRGraph, assignment: np.ndarray, n_parts: int) -> float:
    """Worst-case communication cost ``max_q C(q)`` (Tables 4–6)."""
    return float(part_cuts(graph, assignment, n_parts).max(initial=0.0))


def boundary_nodes(graph: CSRGraph, assignment: np.ndarray) -> np.ndarray:
    """Nodes with at least one neighbor in a different part.

    These are the only candidates the paper's hill-climbing step examines
    (Section 3.6).
    """
    a = np.asarray(assignment)
    mask = cut_edges_mask(graph, a)
    ends = np.concatenate([graph.edges_u[mask], graph.edges_v[mask]])
    return np.unique(ends)


def balance_ratio(graph: CSRGraph, assignment: np.ndarray, n_parts: int) -> float:
    """``max_q load(q) / (W / k)`` — 1.0 is perfectly balanced.

    Not a paper metric, but the standard way modern partitioners state
    balance constraints; used by the experiment reports for context.
    """
    loads = part_loads(graph, assignment, n_parts)
    avg = graph.total_node_weight() / n_parts
    if avg == 0:
        return 1.0
    return float(loads.max() / avg)


# ----------------------------------------------------------------------
# Batch (population) metrics: population has shape (P, n)
# ----------------------------------------------------------------------

#: Element budget for one chunk's scratch arrays.  Chunks are sized so a
#: chunk's gather temporaries stay around a few tens of MB no matter how
#: large the population is; per-row results are unaffected by where the
#: chunk boundaries fall.
_CHUNK_ELEMS = 4_194_304


def check_population(
    graph: CSRGraph, population: np.ndarray, n_parts: int
) -> np.ndarray:
    """Validate a ``(P, n)`` population matrix and return it as an array.

    Callers that validate once up front can pass ``validate=False`` to
    the batch metrics to skip the repeated label scans.
    """
    pop = np.asarray(population)
    if pop.ndim != 2 or pop.shape[1] != graph.n_nodes:
        raise PartitionError(
            f"population must have shape (P, {graph.n_nodes}), got {pop.shape}"
        )
    if not np.issubdtype(pop.dtype, np.integer):
        raise PartitionError(f"population must be integer-typed, got {pop.dtype}")
    if pop.size and (pop.min() < 0 or pop.max() >= n_parts):
        raise PartitionError(f"population labels out of range [0, {n_parts})")
    return pop


# module-internal alias kept for brevity at the call sites below
_check_population = check_population


def _chunk_step(n_rows: int, elems_per_row: int, chunk_rows: Optional[int]) -> int:
    """Rows per chunk: explicit override, or sized to the element budget."""
    if chunk_rows is not None:
        if chunk_rows < 1:
            raise PartitionError(f"chunk_rows must be >= 1, got {chunk_rows}")
        return int(chunk_rows)
    if elems_per_row <= 0:
        return max(n_rows, 1)
    return max(1, _CHUNK_ELEMS // elems_per_row)


def _fused_labels(chunk: np.ndarray, n_parts: int) -> np.ndarray:
    """Fused bincount index ``row * n_parts + label`` for one chunk.

    int32 when the fused range fits (it always does after chunking,
    short of pathological ``n_parts``) — the edge-endpoint gathers built
    from this array dominate memory traffic, so halving their width
    matters.
    """
    c = chunk.shape[0]
    dtype = np.int32 if c * n_parts <= np.iinfo(np.int32).max else np.int64
    fused = chunk.astype(dtype, copy=True)
    fused += (np.arange(c, dtype=dtype) * n_parts)[:, None]
    return fused


def _node_strengths(graph: CSRGraph) -> np.ndarray:
    """Total incident edge weight per node (memoized on the graph)."""
    return graph.node_strengths()


@kernel_probe("batch_part_loads")
def batch_part_loads(
    graph: CSRGraph,
    population: np.ndarray,
    n_parts: int,
    *,
    chunk_rows: Optional[int] = None,
    validate: bool = True,
) -> np.ndarray:
    """``(P, n_parts)`` matrix of per-part node-weight loads.

    ``chunk_rows`` caps rows processed per bincount pass (default: sized
    to the module's element budget); ``validate=False`` skips the
    population checks when the caller has already validated (labels out
    of range then give undefined results).
    """
    pop = (
        _check_population(graph, population, n_parts)
        if validate
        else np.asarray(population)
    )
    p, n = pop.shape
    loads = np.empty((p, n_parts))
    if p == 0 or n_parts == 0:
        return loads
    step = _chunk_step(p, n, chunk_rows)
    w = graph.node_weights
    # unit node weights (the paper's setting) turn the weighted sum into
    # a plain occurrence count — same bits, no (c, n) weights temporary
    unit = graph.has_unit_node_weights()
    for start in range(0, p, step):
        chunk = pop[start : start + step]
        c = chunk.shape[0]
        fused = _fused_labels(chunk, n_parts)
        if unit:
            binned = np.bincount(fused.ravel(), minlength=c * n_parts)
        else:
            weights = np.broadcast_to(w, (c, n))
            binned = np.bincount(
                fused.ravel(), weights=weights.ravel(), minlength=c * n_parts
            )
        loads[start : start + c] = binned.reshape(c, n_parts)
    return loads


def batch_load_imbalance(
    graph: CSRGraph,
    population: np.ndarray,
    n_parts: int,
    *,
    chunk_rows: Optional[int] = None,
    validate: bool = True,
) -> np.ndarray:
    """``(P,)`` vector of quadratic imbalance penalties."""
    loads = batch_part_loads(
        graph, population, n_parts, chunk_rows=chunk_rows, validate=validate
    )
    avg = graph.total_node_weight() / n_parts
    return np.sum((loads - avg) ** 2, axis=1)


@kernel_probe("batch_cut_size")
def batch_cut_size(
    graph: CSRGraph,
    population: np.ndarray,
    *,
    chunk_rows: Optional[int] = None,
) -> np.ndarray:
    """``(P,)`` vector of total cut weights.

    Chunk-invariant: the same floats come out regardless of chunk
    height, so ``chunk_rows`` is a pure performance knob.  For
    integer-valued edge weights (the paper's setting) whose total stays
    below 2**53 every partial sum of the BLAS row reduction is an
    exactly-representable integer, so the accumulation order BLAS picks
    for a given matrix shape cannot change the result — the fast path
    is exact by construction (weights large enough to break that bound
    take the fallback path below).  Fractional weights, where reduction order does move
    the last ulp, take a masked ``np.add.reduceat`` row reduction
    instead, whose strictly sequential per-row order depends only on
    the row length ``m``, never on how many rows share the chunk.
    (``ndarray.sum(axis=1)`` would not do: for multi-row arrays numpy
    switches from per-row pairwise to a buffered column-accumulation
    loop whose order varies with the row count.)
    """
    pop = np.asarray(population)
    if pop.ndim != 2 or pop.shape[1] != graph.n_nodes:
        raise PartitionError(
            f"population must have shape (P, {graph.n_nodes}), got {pop.shape}"
        )
    p = pop.shape[0]
    if graph.n_edges == 0:
        return np.zeros(p)
    out = np.empty(p)
    step = _chunk_step(p, graph.n_edges, chunk_rows)
    # the order-free argument needs every partial sum exactly
    # representable; the total edge weight bounds any row's cut sum,
    # so graphs with astronomically large integer weights fall back to
    # the order-fixed reduceat path instead of voiding the invariance
    exact = (
        graph.has_integer_edge_weights()
        and graph.total_edge_weight() < 2.0**53
    )
    ew = graph.edge_weights
    for start in range(0, p, step):
        chunk = pop[start : start + step]
        cut = chunk[:, graph.edges_u] != chunk[:, graph.edges_v]  # (c, m) bool
        if exact:
            out[start : start + chunk.shape[0]] = cut @ ew
        else:
            masked = np.where(cut, ew, 0.0)
            out[start : start + chunk.shape[0]] = np.add.reduceat(
                masked, [0], axis=1
            )[:, 0]
    return out


@kernel_probe("batch_part_cuts")
def batch_part_cuts(
    graph: CSRGraph,
    population: np.ndarray,
    n_parts: int,
    *,
    chunk_rows: Optional[int] = None,
    validate: bool = True,
) -> np.ndarray:
    """``(P, n_parts)`` matrix of per-part boundary weights ``C(q)``.

    For integer-valued edge weights (the paper's setting) uses the
    identity ``C(q) = U(q) - 2 * S_int(q)``: ``U(q)`` is the total
    incident weight of the nodes assigned to ``q`` (a node-level fused
    bincount, independent of the cut) and ``S_int(q)`` the weight of
    edges internal to ``q``.  Internal edges have both endpoints in the
    same part, so ``S_int`` needs one bincount over the *uncut*
    (row, edge) pairs only — typically a small fraction of ``P × m`` —
    instead of two scatter-adds over every pair as in the direct form.
    When most edges are uncut (near-converged populations) a dense
    zero-weighted bincount is cheaper than gathering indices, so the
    kernel switches on the measured uncut fraction per chunk.  The
    identity is evaluated exactly when all weights are integer-valued;
    for fractional weights it would cancel two large sums (losing exact
    zeros on uncut parts), so those graphs take a direct fused bincount
    over both endpoints instead, which accumulates in the same order as
    the classical scatter-add form.
    """
    pop = (
        _check_population(graph, population, n_parts)
        if validate
        else np.asarray(population)
    )
    p = pop.shape[0]
    m = graph.n_edges
    cuts = np.empty((p, n_parts))
    if p == 0 or n_parts == 0:
        return cuts
    if m == 0:
        cuts[:] = 0.0
        return cuts
    ew = graph.edge_weights
    eu, ev = graph.edges_u, graph.edges_v
    # float64 sums of integer-valued weights are exact (below 2**53),
    # so U - 2*S_int cancels without error; fractional weights would
    # trade a part's cut weight for cancellation noise scaled by its
    # total incident weight, so they take the direct two-endpoint path.
    # Unit edge weights (the paper's setting) additionally turn the
    # internal-edge sum into a plain occurrence count, skipping the
    # ``ew`` gather entirely — a count of 1.0s is the same bits.
    unit = graph.has_unit_edge_weights()
    exact = unit or graph.has_integer_edge_weights()
    strengths = _node_strengths(graph) if exact else None
    step = _chunk_step(p, pop.shape[1] + 2 * m, chunk_rows)
    for start in range(0, p, step):
        chunk = pop[start : start + step]
        c = chunk.shape[0]
        fused = _fused_labels(chunk, n_parts)
        iu = fused[:, eu]  # (c, m) fused endpoint bins
        iv = fused[:, ev]
        if exact:
            incident = np.bincount(
                fused.ravel(),
                weights=np.broadcast_to(strengths, chunk.shape).ravel(),
                minlength=c * n_parts,
            )
            uncut = iu == iv
            n_uncut = int(np.count_nonzero(uncut))
            flat_iu = iu.ravel()
            if n_uncut * 4 <= uncut.size:
                sel = np.flatnonzero(uncut.ravel())
                if unit:
                    internal = np.bincount(flat_iu[sel], minlength=c * n_parts)
                else:
                    internal = np.bincount(
                        flat_iu[sel], weights=ew[sel % m], minlength=c * n_parts
                    )
            else:
                if unit:
                    w = uncut.astype(np.float64)
                else:
                    w = np.where(uncut, ew, 0.0)
                internal = np.bincount(
                    flat_iu, weights=w.ravel(), minlength=c * n_parts
                )
            binned = incident - 2.0 * internal
        else:
            w = np.where(iu != iv, ew, 0.0).ravel()
            binned = np.bincount(
                np.concatenate([iu.ravel(), iv.ravel()]),
                weights=np.concatenate([w, w]),
                minlength=c * n_parts,
            )
        cuts[start : start + c] = binned.reshape(c, n_parts)
    return cuts


def batch_max_part_cut(
    graph: CSRGraph,
    population: np.ndarray,
    n_parts: int,
    *,
    chunk_rows: Optional[int] = None,
    validate: bool = True,
) -> np.ndarray:
    """``(P,)`` vector of worst-part cuts ``max_q C(q)``."""
    cuts = batch_part_cuts(
        graph, population, n_parts, chunk_rows=chunk_rows, validate=validate
    )
    if cuts.shape[1] == 0:
        return np.zeros(cuts.shape[0])
    return cuts.max(axis=1)
