"""Partition quality metrics — the quantities from Section 2 of the paper.

For an assignment ``M : V -> {0..k-1}`` the paper defines, per part ``q``:

* load imbalance  ``I(q) = (sum_{v in B(q)} w_v - W/k)^2`` where ``W`` is
  the total node weight;
* communication cost ``C(q) = sum of w_e over edges with exactly one
  endpoint in q``.

Tables 1–3 report the *total cut* ``sum_q C(q) / 2`` (each cut edge is
counted from both of its parts) and Tables 4–6 report the *worst cut*
``max_q C(q)``.

Every metric has two forms: a scalar form over one assignment vector of
shape ``(n,)``, and a batch form over a population matrix of shape
``(P, n)`` which evaluates all ``P`` individuals with whole-array numpy
operations — this is the GA's inner loop, so there are no Python-level
loops over individuals or edges.
"""

from __future__ import annotations

import numpy as np

from ..errors import PartitionError
from ..graphs.csr import CSRGraph

__all__ = [
    "part_loads",
    "load_imbalance",
    "cut_size",
    "part_cuts",
    "max_part_cut",
    "cut_edges_mask",
    "boundary_nodes",
    "batch_part_loads",
    "batch_load_imbalance",
    "batch_cut_size",
    "batch_part_cuts",
    "batch_max_part_cut",
    "balance_ratio",
]


def _check_assignment(graph: CSRGraph, assignment: np.ndarray, n_parts: int) -> np.ndarray:
    a = np.asarray(assignment)
    if a.shape != (graph.n_nodes,):
        raise PartitionError(
            f"assignment length {a.shape} does not match graph with "
            f"{graph.n_nodes} nodes"
        )
    if not np.issubdtype(a.dtype, np.integer):
        raise PartitionError(f"assignment must be integer-typed, got {a.dtype}")
    if a.size and (a.min() < 0 or a.max() >= n_parts):
        raise PartitionError(
            f"assignment labels must lie in [0, {n_parts}), "
            f"got range [{a.min()}, {a.max()}]"
        )
    return a


# ----------------------------------------------------------------------
# Scalar (single-assignment) metrics
# ----------------------------------------------------------------------

def part_loads(graph: CSRGraph, assignment: np.ndarray, n_parts: int) -> np.ndarray:
    """Total node weight per part: ``loads[q] = sum_{v in B(q)} w_v``."""
    a = _check_assignment(graph, assignment, n_parts)
    loads = np.zeros(n_parts)
    np.add.at(loads, a, graph.node_weights)
    return loads


def load_imbalance(graph: CSRGraph, assignment: np.ndarray, n_parts: int) -> float:
    """The paper's quadratic imbalance penalty ``sum_q I(q)``."""
    loads = part_loads(graph, assignment, n_parts)
    avg = graph.total_node_weight() / n_parts
    return float(np.sum((loads - avg) ** 2))


def cut_edges_mask(graph: CSRGraph, assignment: np.ndarray) -> np.ndarray:
    """Boolean mask over the edge list: True where the edge is cut."""
    a = np.asarray(assignment)
    if a.shape != (graph.n_nodes,):
        raise PartitionError("assignment length mismatch")
    return a[graph.edges_u] != a[graph.edges_v]


def cut_size(graph: CSRGraph, assignment: np.ndarray) -> float:
    """Total weight of cut edges — the paper's ``sum_q C(q) / 2``."""
    mask = cut_edges_mask(graph, assignment)
    return float(graph.edge_weights[mask].sum())


def part_cuts(graph: CSRGraph, assignment: np.ndarray, n_parts: int) -> np.ndarray:
    """``C(q)`` per part: weight of edges leaving part ``q``."""
    a = _check_assignment(graph, assignment, n_parts)
    mask = a[graph.edges_u] != a[graph.edges_v]
    cuts = np.zeros(n_parts)
    np.add.at(cuts, a[graph.edges_u[mask]], graph.edge_weights[mask])
    np.add.at(cuts, a[graph.edges_v[mask]], graph.edge_weights[mask])
    return cuts


def max_part_cut(graph: CSRGraph, assignment: np.ndarray, n_parts: int) -> float:
    """Worst-case communication cost ``max_q C(q)`` (Tables 4–6)."""
    return float(part_cuts(graph, assignment, n_parts).max(initial=0.0))


def boundary_nodes(graph: CSRGraph, assignment: np.ndarray) -> np.ndarray:
    """Nodes with at least one neighbor in a different part.

    These are the only candidates the paper's hill-climbing step examines
    (Section 3.6).
    """
    a = np.asarray(assignment)
    mask = cut_edges_mask(graph, a)
    ends = np.concatenate([graph.edges_u[mask], graph.edges_v[mask]])
    return np.unique(ends)


def balance_ratio(graph: CSRGraph, assignment: np.ndarray, n_parts: int) -> float:
    """``max_q load(q) / (W / k)`` — 1.0 is perfectly balanced.

    Not a paper metric, but the standard way modern partitioners state
    balance constraints; used by the experiment reports for context.
    """
    loads = part_loads(graph, assignment, n_parts)
    avg = graph.total_node_weight() / n_parts
    if avg == 0:
        return 1.0
    return float(loads.max() / avg)


# ----------------------------------------------------------------------
# Batch (population) metrics: population has shape (P, n)
# ----------------------------------------------------------------------

def _check_population(graph: CSRGraph, population: np.ndarray, n_parts: int) -> np.ndarray:
    pop = np.asarray(population)
    if pop.ndim != 2 or pop.shape[1] != graph.n_nodes:
        raise PartitionError(
            f"population must have shape (P, {graph.n_nodes}), got {pop.shape}"
        )
    if not np.issubdtype(pop.dtype, np.integer):
        raise PartitionError(f"population must be integer-typed, got {pop.dtype}")
    if pop.size and (pop.min() < 0 or pop.max() >= n_parts):
        raise PartitionError(f"population labels out of range [0, {n_parts})")
    return pop


def batch_part_loads(graph: CSRGraph, population: np.ndarray, n_parts: int) -> np.ndarray:
    """``(P, n_parts)`` matrix of per-part node-weight loads."""
    pop = _check_population(graph, population, n_parts)
    p = pop.shape[0]
    loads = np.zeros((p, n_parts))
    rows = np.broadcast_to(np.arange(p)[:, None], pop.shape)
    np.add.at(loads, (rows, pop), graph.node_weights[None, :])
    return loads


def batch_load_imbalance(graph: CSRGraph, population: np.ndarray, n_parts: int) -> np.ndarray:
    """``(P,)`` vector of quadratic imbalance penalties."""
    loads = batch_part_loads(graph, population, n_parts)
    avg = graph.total_node_weight() / n_parts
    return np.sum((loads - avg) ** 2, axis=1)


def batch_cut_size(graph: CSRGraph, population: np.ndarray) -> np.ndarray:
    """``(P,)`` vector of total cut weights."""
    pop = np.asarray(population)
    if pop.ndim != 2 or pop.shape[1] != graph.n_nodes:
        raise PartitionError(
            f"population must have shape (P, {graph.n_nodes}), got {pop.shape}"
        )
    if graph.n_edges == 0:
        return np.zeros(pop.shape[0])
    cut = pop[:, graph.edges_u] != pop[:, graph.edges_v]  # (P, m) bool
    return cut @ graph.edge_weights


def batch_part_cuts(graph: CSRGraph, population: np.ndarray, n_parts: int) -> np.ndarray:
    """``(P, n_parts)`` matrix of per-part boundary weights ``C(q)``."""
    pop = _check_population(graph, population, n_parts)
    p = pop.shape[0]
    cuts = np.zeros((p, n_parts))
    if graph.n_edges == 0:
        return cuts
    pu = pop[:, graph.edges_u]  # (P, m)
    pv = pop[:, graph.edges_v]
    cut = pu != pv
    w = np.where(cut, graph.edge_weights[None, :], 0.0)
    rows = np.broadcast_to(np.arange(p)[:, None], pu.shape)
    np.add.at(cuts, (rows, pu), w)
    np.add.at(cuts, (rows, pv), w)
    return cuts


def batch_max_part_cut(graph: CSRGraph, population: np.ndarray, n_parts: int) -> np.ndarray:
    """``(P,)`` vector of worst-part cuts ``max_q C(q)``."""
    cuts = batch_part_cuts(graph, population, n_parts)
    if cuts.shape[1] == 0:
        return np.zeros(cuts.shape[0])
    return cuts.max(axis=1)
