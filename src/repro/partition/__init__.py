"""Partition objects, quality metrics, and balance utilities."""

from .partition import Partition
from .metrics import (
    balance_ratio,
    batch_cut_size,
    batch_load_imbalance,
    batch_max_part_cut,
    batch_part_cuts,
    batch_part_loads,
    boundary_nodes,
    check_population,
    cut_edges_mask,
    cut_size,
    load_imbalance,
    max_part_cut,
    part_cuts,
    part_loads,
)
from .balance import assign_balanced, random_balanced_assignment, rebalance
from .validate import check_partition, require_all_parts_nonempty, require_balance
from .visualize import ascii_render, part_summary

__all__ = [
    "Partition",
    "balance_ratio",
    "batch_cut_size",
    "batch_load_imbalance",
    "batch_max_part_cut",
    "batch_part_cuts",
    "batch_part_loads",
    "boundary_nodes",
    "check_population",
    "cut_edges_mask",
    "cut_size",
    "load_imbalance",
    "max_part_cut",
    "part_cuts",
    "part_loads",
    "assign_balanced",
    "random_balanced_assignment",
    "rebalance",
    "check_partition",
    "require_all_parts_nonempty",
    "require_balance",
    "ascii_render",
    "part_summary",
]
