"""Terminal visualization of partitions.

No plotting dependency is available offline, so partitions of
coordinate-carrying graphs are rendered as ASCII rasters: the bounding
box is sampled on a character grid and each cell shows the part label
of the nearest vertex.  Good enough to eyeball whether parts are
compact (RSB/IBP) or fragmented (random), which is the qualitative
story behind all the cut numbers.
"""

from __future__ import annotations

import numpy as np

from ..errors import GraphError
from .partition import Partition

__all__ = ["ascii_render", "part_summary"]

_GLYPHS = "0123456789abcdefghijklmnopqrstuvwxyz"


def ascii_render(
    partition: Partition, width: int = 60, height: int = 24
) -> str:
    """Render a 2-D partition as a character raster.

    Each raster cell displays the part of the nearest graph vertex;
    vertices themselves are marked with the part glyph uppercased when
    alphabetic.  Requires 2-D coordinates.
    """
    graph = partition.graph
    if graph.coords is None or graph.coords.shape[1] != 2:
        raise GraphError("ascii_render needs 2-D vertex coordinates")
    if width < 2 or height < 2:
        raise GraphError("raster must be at least 2x2")
    if partition.n_parts > len(_GLYPHS):
        raise GraphError(f"can render at most {len(_GLYPHS)} parts")
    pts = graph.coords
    lo = pts.min(axis=0)
    hi = pts.max(axis=0)
    span = np.where(hi > lo, hi - lo, 1.0)

    xs = np.linspace(lo[0], hi[0], width)
    ys = np.linspace(hi[1], lo[1], height)  # screen-y grows downward
    gx, gy = np.meshgrid(xs, ys)
    cells = np.column_stack([gx.ravel(), gy.ravel()])
    from scipy.spatial import cKDTree

    tree = cKDTree(pts)
    _, nearest = tree.query(cells)
    labels = partition.assignment[nearest].reshape(height, width)

    canvas = np.empty((height, width), dtype="<U1")
    for q in range(partition.n_parts):
        canvas[labels == q] = _GLYPHS[q]
    # overlay actual vertex positions
    vx = np.clip(((pts[:, 0] - lo[0]) / span[0] * (width - 1)).round(), 0, width - 1).astype(int)
    vy = np.clip(((hi[1] - pts[:, 1]) / span[1] * (height - 1)).round(), 0, height - 1).astype(int)
    for i in range(graph.n_nodes):
        glyph = _GLYPHS[partition.assignment[i]]
        canvas[vy[i], vx[i]] = glyph.upper() if glyph.isalpha() else glyph
    return "\n".join("".join(row) for row in canvas)


def part_summary(partition: Partition) -> str:
    """Tabular per-part summary: size, load, boundary cost C(q)."""
    lines = [f"{'part':>5} {'size':>6} {'load':>8} {'C(q)':>7}"]
    cuts = partition.part_cuts
    loads = partition.part_loads
    sizes = partition.part_sizes
    for q in range(partition.n_parts):
        lines.append(
            f"{q:>5} {sizes[q]:>6} {loads[q]:>8.1f} {cuts[q]:>7.1f}"
        )
    lines.append(
        f"total cut {partition.cut_size:g}, worst C(q) "
        f"{partition.max_part_cut:g}, balance {partition.balance_ratio:.3f}"
    )
    return "\n".join(lines)
