"""Balance construction and repair utilities.

The incremental seeding strategy of the paper (Section 3.5) assigns new
nodes "randomly ... while at the same time ensuring that balance is
maintained"; :func:`assign_balanced` implements that primitive.
:func:`rebalance` repairs an arbitrary assignment toward equal loads by
migrating boundary nodes out of overloaded parts — used to keep GA seeds
feasible and as a post-pass for partitioners that drift.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..errors import PartitionError
from ..graphs.csr import CSRGraph
from ..rng import SeedLike, as_generator
from .metrics import part_loads
from .partition import Partition

__all__ = ["random_balanced_assignment", "assign_balanced", "rebalance"]


def random_balanced_assignment(
    n_nodes: int, n_parts: int, seed: SeedLike = None
) -> np.ndarray:
    """Uniformly random assignment with part sizes differing by at most 1."""
    if n_parts < 1:
        raise PartitionError(f"n_parts must be >= 1, got {n_parts}")
    rng = as_generator(seed)
    labels = np.arange(n_nodes) % n_parts
    rng.shuffle(labels)
    return labels.astype(np.int64)


def assign_balanced(
    graph: CSRGraph,
    fixed: np.ndarray,
    free_nodes: np.ndarray,
    n_parts: int,
    seed: SeedLike = None,
) -> np.ndarray:
    """Assign ``free_nodes`` randomly while keeping part loads balanced.

    ``fixed`` is a full-length assignment whose entries at ``free_nodes``
    are ignored; all other entries are preserved.  Free nodes are placed
    one at a time (in random order) into a uniformly random choice among
    the currently lightest parts, which is the paper's incremental
    seeding rule.
    """
    rng = as_generator(seed)
    fixed = np.asarray(fixed, dtype=np.int64).copy()
    free_nodes = np.asarray(free_nodes, dtype=np.int64)
    if fixed.shape != (graph.n_nodes,):
        raise PartitionError("fixed assignment length mismatch")
    if free_nodes.size and (free_nodes.min() < 0 or free_nodes.max() >= graph.n_nodes):
        raise PartitionError("free node id out of range")

    mask = np.ones(graph.n_nodes, dtype=bool)
    mask[free_nodes] = False
    loads = np.zeros(n_parts)
    kept = np.flatnonzero(mask)
    if kept.size:
        if fixed[kept].min() < 0 or fixed[kept].max() >= n_parts:
            raise PartitionError("fixed labels out of range")
        np.add.at(loads, fixed[kept], graph.node_weights[kept])

    order = free_nodes.copy()
    rng.shuffle(order)
    for node in order:
        lightest = np.flatnonzero(loads == loads.min())
        q = int(rng.choice(lightest))
        fixed[node] = q
        loads[q] += graph.node_weights[node]
    return fixed


def rebalance(
    partition: Partition,
    max_ratio: float = 1.05,
    max_passes: int = 20,
    seed: SeedLike = None,
) -> Partition:
    """Repair an unbalanced partition by migrating boundary nodes.

    Repeatedly moves a boundary node from the most-loaded part to its
    cut-minimizing neighboring part among those below the target load,
    until ``balance_ratio <= max_ratio`` or no legal move exists.
    """
    if max_ratio < 1.0:
        raise PartitionError(f"max_ratio must be >= 1.0, got {max_ratio}")
    graph = partition.graph
    n_parts = partition.n_parts
    a = partition.assignment.copy()
    rng = as_generator(seed)
    loads = part_loads(graph, a, n_parts)
    avg = graph.total_node_weight() / n_parts
    target = avg * max_ratio

    for _ in range(max_passes * graph.n_nodes):
        over = int(np.argmax(loads))
        if loads[over] <= target or avg == 0:
            break
        members = np.flatnonzero(a == over)
        # Among the overloaded part's nodes, prefer the move that loses the
        # fewest internal edges: pick the node with the most neighbors in
        # the destination part.
        best = None  # (internal_gain, node, dest)
        candidates = members.copy()
        rng.shuffle(candidates)
        for node in candidates:
            nbrs = graph.neighbors(node)
            w = graph.neighbor_weights(node)
            for q in range(n_parts):
                if q == over or loads[q] + graph.node_weights[node] > target:
                    continue
                gain = float(w[a[nbrs] == q].sum() - w[a[nbrs] == over].sum())
                if best is None or gain > best[0]:
                    best = (gain, int(node), q)
        if best is None:
            # no under-target destination can absorb any node: move to the
            # globally lightest part to keep making progress
            node = int(candidates[0])
            q = int(np.argmin(loads))
            if q == over:
                break
            best = (0.0, node, q)
        _, node, dest = best
        a[node] = dest
        loads[over] -= graph.node_weights[node]
        loads[dest] += graph.node_weights[node]
    return Partition(graph, a, n_parts)
