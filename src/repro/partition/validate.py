"""Partition validity checks used by tests and the experiment runner."""

from __future__ import annotations

import numpy as np

from ..errors import PartitionError
from .partition import Partition

__all__ = ["check_partition", "require_all_parts_nonempty", "require_balance"]


def check_partition(partition: Partition) -> None:
    """Verify the assignment is well-formed and metrics are self-consistent."""
    a = partition.assignment
    if a.shape != (partition.graph.n_nodes,):
        raise PartitionError("assignment length mismatch")
    if a.size and (a.min() < 0 or a.max() >= partition.n_parts):
        raise PartitionError("label out of range")
    # Per-part cut consistency: sum_q C(q) must equal twice the cut size.
    total = float(partition.part_cuts.sum())
    if not np.isclose(total, 2.0 * partition.cut_size):
        raise PartitionError(
            f"sum_q C(q) = {total} but 2 * cut_size = {2 * partition.cut_size}"
        )
    if not np.isclose(
        float(partition.part_loads.sum()), partition.graph.total_node_weight()
    ):
        raise PartitionError("part loads do not sum to total node weight")
    if int(partition.part_sizes.sum()) != partition.graph.n_nodes:
        raise PartitionError("part sizes do not sum to node count")


def require_all_parts_nonempty(partition: Partition) -> None:
    """Raise unless every part contains at least one node."""
    empty = np.flatnonzero(partition.part_sizes == 0)
    if empty.size:
        raise PartitionError(f"empty parts: {empty.tolist()}")


def require_balance(partition: Partition, max_ratio: float) -> None:
    """Raise unless ``balance_ratio <= max_ratio``."""
    ratio = partition.balance_ratio
    if ratio > max_ratio + 1e-12:
        raise PartitionError(
            f"balance ratio {ratio:.4f} exceeds allowed {max_ratio:.4f}"
        )
