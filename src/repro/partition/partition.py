"""The :class:`Partition` value object.

A partition couples a graph with a ``k``-way node assignment and exposes
the paper's quality metrics as cached properties.  Partitions are
immutable; refinement algorithms return new partitions.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..errors import PartitionError
from ..graphs.csr import CSRGraph
from . import metrics

__all__ = ["Partition"]


class Partition:
    """An immutable ``k``-way partition of a graph.

    Parameters
    ----------
    graph:
        The partitioned graph.
    assignment:
        Integer vector; ``assignment[i] = q`` places node ``i`` in part
        ``q``.  This is exactly the chromosome representation of
        Section 3.1 of the paper.
    n_parts:
        Number of parts ``k``.  Defaults to ``assignment.max() + 1``;
        passing it explicitly allows empty parts.
    """

    __slots__ = ("graph", "assignment", "n_parts", "_cache")

    def __init__(
        self,
        graph: CSRGraph,
        assignment: np.ndarray,
        n_parts: Optional[int] = None,
    ) -> None:
        arr = np.asarray(assignment)
        if not np.issubdtype(arr.dtype, np.integer):
            try:
                cast = arr.astype(np.int64)
            except (TypeError, ValueError) as exc:
                raise PartitionError(f"assignment must be integers: {exc}") from exc
            if arr.size and not np.array_equal(cast, arr):
                raise PartitionError("assignment contains non-integer values")
            arr = cast
        arr = arr.astype(np.int64, copy=True)
        if arr.shape != (graph.n_nodes,):
            raise PartitionError(
                f"assignment length {arr.size} != graph nodes {graph.n_nodes}"
            )
        if n_parts is None:
            n_parts = int(arr.max()) + 1 if arr.size else 1
        if n_parts < 1:
            raise PartitionError(f"n_parts must be >= 1, got {n_parts}")
        if arr.size and (arr.min() < 0 or arr.max() >= n_parts):
            raise PartitionError(
                f"assignment labels out of range [0, {n_parts})"
            )
        arr.setflags(write=False)
        object.__setattr__(self, "graph", graph)
        object.__setattr__(self, "assignment", arr)
        object.__setattr__(self, "n_parts", int(n_parts))
        object.__setattr__(self, "_cache", {})

    def __setattr__(self, name, value):  # pragma: no cover - immutability guard
        raise AttributeError("Partition is immutable")

    # ------------------------------------------------------------------
    # Metrics (cached — the object is immutable so caching is safe)
    # ------------------------------------------------------------------
    def _cached(self, key, fn):
        if key not in self._cache:
            self._cache[key] = fn()
        return self._cache[key]

    @property
    def cut_size(self) -> float:
        """Total weight of cut edges (``sum_q C(q) / 2``)."""
        return self._cached("cut", lambda: metrics.cut_size(self.graph, self.assignment))

    @property
    def part_cuts(self) -> np.ndarray:
        """Per-part boundary weight ``C(q)``."""
        return self._cached(
            "part_cuts",
            lambda: metrics.part_cuts(self.graph, self.assignment, self.n_parts),
        )

    @property
    def max_part_cut(self) -> float:
        """Worst-part communication cost ``max_q C(q)``."""
        return float(self.part_cuts.max(initial=0.0))

    @property
    def part_loads(self) -> np.ndarray:
        """Node-weight load per part."""
        return self._cached(
            "loads",
            lambda: metrics.part_loads(self.graph, self.assignment, self.n_parts),
        )

    @property
    def load_imbalance(self) -> float:
        """Quadratic imbalance penalty ``sum_q I(q)``."""
        avg = self.graph.total_node_weight() / self.n_parts
        return float(np.sum((self.part_loads - avg) ** 2))

    @property
    def balance_ratio(self) -> float:
        """``max load / ideal load``; 1.0 = perfect balance."""
        return metrics.balance_ratio(self.graph, self.assignment, self.n_parts)

    @property
    def part_sizes(self) -> np.ndarray:
        """Node count per part ``|B(q)|``."""
        return self._cached(
            "sizes",
            lambda: np.bincount(self.assignment, minlength=self.n_parts).astype(np.int64),
        )

    def boundary_nodes(self) -> np.ndarray:
        """Nodes adjacent to at least one other part."""
        return metrics.boundary_nodes(self.graph, self.assignment)

    def part_members(self, q: int) -> np.ndarray:
        """Node ids in part ``q`` — the set ``B(q)`` of the paper."""
        if not 0 <= q < self.n_parts:
            raise PartitionError(f"part {q} out of range [0, {self.n_parts})")
        return np.flatnonzero(self.assignment == q)

    # ------------------------------------------------------------------
    # Derivation
    # ------------------------------------------------------------------
    def with_assignment(self, assignment: np.ndarray) -> "Partition":
        """New partition of the same graph with a different assignment."""
        return Partition(self.graph, assignment, self.n_parts)

    def relabeled(self) -> "Partition":
        """Canonical relabeling: parts renumbered by first occurrence.

        Partitions that differ only by a permutation of part labels are
        equivalent solutions (the fitness functions are label-symmetric);
        this maps each equivalence class to one representative.
        """
        mapping = np.full(self.n_parts, -1, dtype=np.int64)
        nxt = 0
        out = np.empty_like(self.assignment)
        for i, q in enumerate(self.assignment):
            if mapping[q] == -1:
                mapping[q] = nxt
                nxt += 1
            out[i] = mapping[q]
        return Partition(self.graph, out, self.n_parts)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Partition):
            return NotImplemented
        return (
            self.graph is other.graph
            and self.n_parts == other.n_parts
            and np.array_equal(self.assignment, other.assignment)
        )

    def __hash__(self):  # pragma: no cover
        raise TypeError("Partition is not hashable")

    def __repr__(self) -> str:
        return (
            f"Partition(n_nodes={self.graph.n_nodes}, n_parts={self.n_parts}, "
            f"cut={self.cut_size:g}, worst={self.max_part_cut:g}, "
            f"sizes={self.part_sizes.tolist()})"
        )
