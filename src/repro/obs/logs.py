"""Structured JSON logging for shard-fleet lifecycle events.

Shard restarts, ``ShardDiedError`` fail-fasts, socket re-attaches, and
snapshot write/restore outcomes were silent (deliberately-swallowed
exceptions) before this module.  They now emit stdlib ``logging``
records under the ``"repro.*"`` logger hierarchy; by default a
``NullHandler`` keeps library use quiet, and :func:`configure_logging`
(used by the ``serve`` CLI) attaches a stderr handler whose formatter
renders one JSON object per line::

    {"ts": 1724....875, "level": "WARNING", "logger": "repro.sharding",
     "event": "shard died", "shard": 1, "trace_id": "9f2c...", ...}

Any ``extra={...}`` keys a call site passes land as top-level fields —
that is how ``trace_id`` rides along when a lifecycle event happens in
a request context.
"""

from __future__ import annotations

import json
import logging
from typing import Optional

__all__ = ["JsonLogFormatter", "get_logger", "configure_logging"]

ROOT_LOGGER = "repro"

#: LogRecord's own attributes — everything else on the record dict is
#: caller-supplied ``extra`` and becomes a JSON field
_STD_KEYS = frozenset(
    (
        "name", "msg", "args", "levelname", "levelno", "pathname",
        "filename", "module", "exc_info", "exc_text", "stack_info",
        "lineno", "funcName", "created", "msecs", "relativeCreated",
        "thread", "threadName", "processName", "process", "taskName",
        "message", "asctime",
    )
)


class JsonLogFormatter(logging.Formatter):
    """One JSON object per record; extras become top-level fields."""

    def format(self, record: logging.LogRecord) -> str:
        payload = {
            "ts": round(record.created, 6),
            "level": record.levelname,
            "logger": record.name,
            "event": record.getMessage(),
        }
        for key, value in record.__dict__.items():
            if key not in _STD_KEYS and key not in payload:
                payload[key] = value
        if record.exc_info and record.exc_info[1] is not None:
            payload["exc"] = (
                f"{type(record.exc_info[1]).__name__}: {record.exc_info[1]}"
            )
        return json.dumps(payload, sort_keys=True, default=str)


def get_logger(suffix: str) -> logging.Logger:
    """``get_logger("sharding")`` → the ``repro.sharding`` logger."""
    return logging.getLogger(f"{ROOT_LOGGER}.{suffix}")


def configure_logging(
    level: int = logging.INFO, stream=None
) -> logging.Logger:
    """Attach a JSON stderr handler to the ``repro`` logger hierarchy
    (idempotent: reconfiguring replaces the handler, never stacks)."""
    root = logging.getLogger(ROOT_LOGGER)
    for handler in list(root.handlers):
        if getattr(handler, "_repro_json", False):
            root.removeHandler(handler)
    handler: logging.Handler = logging.StreamHandler(stream)
    handler.setFormatter(JsonLogFormatter())
    handler._repro_json = True  # type: ignore[attr-defined]
    root.addHandler(handler)
    root.setLevel(level)
    return root


# library default: quiet unless the embedding app configures handlers
logging.getLogger(ROOT_LOGGER).addHandler(logging.NullHandler())
