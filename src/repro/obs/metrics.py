"""Metrics registry: counters, gauges, fixed-bucket histograms.

One schema replaces the serving tier's eleven divergent ``stats()``
dict shapes.  A snapshot is::

    {
      "schema": "repro.obs/v1",
      "counters":   [{"name", "labels", "value"}, ...],
      "gauges":     [{"name", "labels", "value"}, ...],
      "histograms": [{"name", "labels", "le", "counts",
                      "sum", "count"}, ...],
    }

Series are sorted by ``(name, labels)`` so snapshots are stable, and
``le``/``counts`` are per-bucket (not cumulative) with an implicit
``+Inf`` overflow bucket as the last entry of ``counts``.

Components integrate two ways: hot paths call :meth:`MetricsRegistry.
inc`/:meth:`observe` directly, while existing ``stats()`` dicts are
adapted via :meth:`counter_fn`/:meth:`gauge_fn` providers that are
evaluated lazily at snapshot time — **outside** the registry lock, so
the registry lock stays a leaf and never orders against component
locks.  :func:`merge_snapshots` sums snapshots across shards and
:func:`render_prometheus` emits the text exposition format served by
``/v1/metrics``.

Metric values are observational-only: nothing here flows back into
results, seeds, or routing (asserted by the bit-identity tests).
"""

from __future__ import annotations

import json
import re
import threading
from typing import Callable, Optional, Sequence

__all__ = [
    "METRICS_SCHEMA",
    "DEFAULT_BUCKETS_MS",
    "MetricsRegistry",
    "merge_snapshots",
    "render_prometheus",
    "histogram_percentile",
]

METRICS_SCHEMA = "repro.obs/v1"

#: request-latency bucket bounds in milliseconds (sub-ms cache hits
#: through multi-second cold GA runs), +Inf implicit
DEFAULT_BUCKETS_MS = (
    0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0,
    100.0, 250.0, 500.0, 1000.0, 2500.0, 5000.0, 10000.0, 30000.0,
)


def _label_key(labels: dict) -> str:
    return json.dumps(labels, sort_keys=True, separators=(",", ":"))


class _Histogram:
    __slots__ = ("le", "counts", "total", "count")

    def __init__(self, le: Sequence[float]) -> None:
        self.le = tuple(float(b) for b in le)
        self.counts = [0] * (len(self.le) + 1)  # +Inf overflow last
        self.total = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        idx = len(self.le)
        for i, bound in enumerate(self.le):
            if value <= bound:
                idx = i
                break
        self.counts[idx] += 1
        self.total += value
        self.count += 1


class MetricsRegistry:
    """Thread-safe metric store; ``_lock`` is a leaf lock (plain dict
    mutation only — provider functions run outside it)."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict = {}
        self._gauges: dict = {}
        self._hists: dict = {}
        self._providers: list = []

    # ------------------------------------------------------------------
    def inc(self, name: str, value: float = 1.0, **labels) -> None:
        key = (name, _label_key(labels))
        with self._lock:
            entry = self._counters.get(key)
            self._counters[key] = (
                (labels, value) if entry is None
                else (entry[0], entry[1] + value)
            )

    def set_gauge(self, name: str, value: float, **labels) -> None:
        key = (name, _label_key(labels))
        with self._lock:
            self._gauges[key] = (labels, float(value))

    def observe(
        self,
        name: str,
        value: float,
        buckets: Sequence[float] = DEFAULT_BUCKETS_MS,
        **labels,
    ) -> None:
        key = (name, _label_key(labels))
        with self._lock:
            hist = self._hists.get(key)
            if hist is None:
                hist = self._hists[key] = (labels, _Histogram(buckets))
            hist[1].observe(float(value))

    def counter_fn(self, name: str, fn: Callable[[], Sequence]) -> None:
        """Register a lazy counter provider: ``fn() -> [(labels, value),
        ...]``, evaluated at snapshot time outside the registry lock."""
        self._providers.append(("counter", name, fn))

    def gauge_fn(self, name: str, fn: Callable[[], Sequence]) -> None:
        self._providers.append(("gauge", name, fn))

    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        # evaluate providers first, with no lock held: they call into
        # component stats() methods that take their own locks
        provided: list = []
        for kind, name, fn in list(self._providers):
            try:
                series = list(fn())
            except (RuntimeError, ValueError, KeyError, AttributeError):
                # a provider backed by a component torn down mid-close
                # must not take /v1/metrics with it
                continue
            for labels, value in series:
                provided.append((kind, name, dict(labels), float(value)))
        with self._lock:
            counters = {
                key: (dict(labels), float(value))
                for key, (labels, value) in self._counters.items()
            }
            gauges = {
                key: (dict(labels), float(value))
                for key, (labels, value) in self._gauges.items()
            }
            hists = [
                {
                    "name": key[0],
                    "labels": dict(labels),
                    "le": list(hist.le),
                    "counts": list(hist.counts),
                    "sum": hist.total,
                    "count": hist.count,
                }
                for key, (labels, hist) in self._hists.items()
            ]
        for kind, name, labels, value in provided:
            key = (name, _label_key(labels))
            target = counters if kind == "counter" else gauges
            target[key] = (labels, value)
        return {
            "schema": METRICS_SCHEMA,
            "counters": _series(counters),
            "gauges": _series(gauges),
            "histograms": sorted(
                hists, key=lambda h: (h["name"], _label_key(h["labels"]))
            ),
        }


def _series(entries: dict) -> list:
    return [
        {"name": key[0], "labels": labels, "value": value}
        for key, (labels, value) in sorted(
            entries.items(), key=lambda item: item[0]
        )
    ]


def merge_snapshots(snapshots: Sequence[dict]) -> dict:
    """Sum snapshots across shards: counters, gauges, and histogram
    bucket counts add; histograms with mismatched bounds are kept
    side-by-side under distinct labels rather than silently dropped."""
    counters: dict = {}
    gauges: dict = {}
    hists: dict = {}
    for snap in snapshots:
        if not isinstance(snap, dict):
            continue
        for section, target in (("counters", counters), ("gauges", gauges)):
            for row in snap.get(section, ()):
                key = (row["name"], _label_key(row["labels"]))
                if key in target:
                    labels, value = target[key]
                    target[key] = (labels, value + float(row["value"]))
                else:
                    target[key] = (dict(row["labels"]), float(row["value"]))
        for row in snap.get("histograms", ()):
            key = (row["name"], _label_key(row["labels"]),
                   tuple(row.get("le", ())))
            if key in hists:
                merged = hists[key]
                merged["counts"] = [
                    a + b for a, b in zip(merged["counts"], row["counts"])
                ]
                merged["sum"] += float(row["sum"])
                merged["count"] += int(row["count"])
            else:
                hists[key] = {
                    "name": row["name"],
                    "labels": dict(row["labels"]),
                    "le": list(row.get("le", ())),
                    "counts": list(row["counts"]),
                    "sum": float(row["sum"]),
                    "count": int(row["count"]),
                }
    return {
        "schema": METRICS_SCHEMA,
        "counters": _series(counters),
        "gauges": _series(gauges),
        "histograms": sorted(
            hists.values(), key=lambda h: (h["name"], _label_key(h["labels"]))
        ),
    }


def histogram_percentile(hist: dict, quantile: float) -> Optional[float]:
    """Estimate a percentile from one snapshot histogram row by linear
    interpolation within the containing bucket (Prometheus-style)."""
    count = int(hist.get("count", 0))
    if count <= 0:
        return None
    target = max(0.0, min(1.0, float(quantile))) * count
    le = list(hist.get("le", ()))
    counts = list(hist.get("counts", ()))
    seen = 0
    lower = 0.0
    for i, n in enumerate(counts):
        upper = le[i] if i < len(le) else (le[-1] if le else lower)
        if seen + n >= target:
            if n <= 0 or i >= len(le):
                return float(upper)
            frac = (target - seen) / n
            return float(lower + (upper - lower) * frac)
        seen += n
        lower = upper
    return float(le[-1]) if le else None


_NAME_RE = re.compile(r"[^a-zA-Z0-9_:]")
_LABEL_RE = re.compile(r"[^a-zA-Z0-9_]")


def _prom_labels(labels: dict, extra: Optional[dict] = None) -> str:
    merged = dict(labels)
    if extra:
        merged.update(extra)
    if not merged:
        return ""
    body = ",".join(
        _LABEL_RE.sub("_", str(k))
        + "="
        + '"' + str(v).replace("\\", "\\\\").replace('"', '\\"') + '"'
        for k, v in sorted(merged.items())
    )
    return "{" + body + "}"


def render_prometheus(snapshot: dict) -> str:
    """Snapshot → Prometheus text exposition format (version 0.0.4)."""
    lines: list = []
    typed: set = set()

    def header(name: str, kind: str) -> None:
        if name not in typed:
            typed.add(name)
            lines.append(f"# TYPE {name} {kind}")

    for row in snapshot.get("counters", ()):
        name = _NAME_RE.sub("_", row["name"])
        header(name, "counter")
        lines.append(f"{name}{_prom_labels(row['labels'])} {row['value']:g}")
    for row in snapshot.get("gauges", ()):
        name = _NAME_RE.sub("_", row["name"])
        header(name, "gauge")
        lines.append(f"{name}{_prom_labels(row['labels'])} {row['value']:g}")
    for row in snapshot.get("histograms", ()):
        name = _NAME_RE.sub("_", row["name"])
        header(name, "histogram")
        cumulative = 0
        for i, n in enumerate(row["counts"]):
            cumulative += n
            bound = (
                f"{row['le'][i]:g}" if i < len(row["le"]) else "+Inf"
            )
            lines.append(
                f"{name}_bucket"
                f"{_prom_labels(row['labels'], {'le': bound})} {cumulative}"
            )
        lines.append(
            f"{name}_sum{_prom_labels(row['labels'])} {row['sum']:g}"
        )
        lines.append(
            f"{name}_count{_prom_labels(row['labels'])} {row['count']}"
        )
    return "\n".join(lines) + "\n"
