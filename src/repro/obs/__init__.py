"""`repro.obs` — stdlib-first observability for the serving stack.

Three pillars, all observational-only (nothing here may flow into
results, seeds, or routing — the bit-identity tests assert it):

* :mod:`repro.obs.trace` — explicit-context spans with
  ``trace_id``/``span_id``/``parent_id``, monotonic durations, a
  bounded ring buffer, and an optional JSONL sink.  Trace context
  rides the JSON request payloads (``models.py``), the pipe/socket
  shard frames (``transport.py``), and process-pool job shipping
  (``procexec.py``), so one front-side tree stitches in worker spans
  across process and socket boundaries.
* :mod:`repro.obs.metrics` — a registry of counters, gauges, and
  fixed-bucket histograms under one documented snapshot schema
  (:data:`~repro.obs.metrics.METRICS_SCHEMA`), served as JSON and
  Prometheus text by ``/v1/metrics`` and merged across shards by the
  sharded front.
* :mod:`repro.obs.hooks` — thread-scoped GA progress and kernel
  probes: per-generation best-cut/evaluation spans from
  :class:`~repro.ga.engine.GAEngine` and wall-time histograms around
  the bincount kernels and ``climb_batch``, gated to a single integer
  check when off.

:mod:`repro.obs.logs` adds structured JSON log records for shard
lifecycle events (restart, death, re-attach, snapshot write/restore),
carrying ``trace_id`` when in a request context.

The unified metric families exported by the service layer:

========================================  =========  =======================
name                                      type       labels
========================================  =========  =======================
repro_requests_total                      counter    endpoint
repro_request_latency_ms                  histogram  endpoint
repro_cache_hits_total / _misses_total /
  _evictions_total                        counter    cache
repro_cache_entries / _bytes /
  _capacity_bytes                         gauge      cache
repro_warm_seeds                          gauge      —
repro_jobs_executed_total / _joined_
  total / _process_total                  counter    —
repro_groups_executed_total /
  repro_group_members_total               counter    —
repro_inflight_jobs                       gauge      —
repro_sessions_open                       gauge      —
repro_sessions_opened_total / _closed_
  total / _restored_total                 counter    —
repro_session_updates_total               counter    —
repro_session_epoch_max                   gauge      —
repro_snapshots_written_total /
  _write_failures_total / _restored_
  total / _restore_failures_total         counter    —
repro_ga_generations_total                counter    —
repro_kernel_ms                           histogram  kernel
repro_trace_spans_total / _ingested_
  total / _sink_errors_total              counter    —
repro_shard_up                            gauge      shard
repro_shard_deaths_total /
  _restarts_total / _reattach_total       counter    shard
repro_sessions_routed_total               counter    —
========================================  =========  =======================
"""

from .hooks import (
    ExecRecorder,
    active_recorder,
    emit_generation,
    kernel_probe,
    recording,
)
from .logs import JsonLogFormatter, configure_logging, get_logger
from .metrics import (
    DEFAULT_BUCKETS_MS,
    METRICS_SCHEMA,
    MetricsRegistry,
    histogram_percentile,
    merge_snapshots,
    render_prometheus,
)
from .trace import NULL_SPAN, Span, Tracer, span_tree

__all__ = [
    "Span",
    "NULL_SPAN",
    "Tracer",
    "span_tree",
    "METRICS_SCHEMA",
    "DEFAULT_BUCKETS_MS",
    "MetricsRegistry",
    "merge_snapshots",
    "render_prometheus",
    "histogram_percentile",
    "ExecRecorder",
    "recording",
    "emit_generation",
    "kernel_probe",
    "active_recorder",
    "JsonLogFormatter",
    "get_logger",
    "configure_logging",
]
