"""Explicit-context distributed tracing for the serving stack.

A :class:`Span` is one timed region of a request: it carries a
``trace_id`` shared by every span of the request, its own ``span_id``,
and the ``parent_id`` that stitches it into the tree.  Durations come
from the monotonic clock (``time.perf_counter``); the wall-clock stamp
exists only so JSONL sinks can be correlated with external logs.
Trace data is observational-only — nothing in this module feeds
results, seeds, or routing, and the bit-identity suite asserts that.

Context is **explicit**: there is no thread-local "current span".  The
service threads a parent — a :class:`Span` or its wire form
``{"trace_id", "span_id"}`` (:meth:`Span.context`) — through call
sites, which is what lets one tree span threads, processes, and
sockets without ambient state.

The :class:`Tracer` is the per-process sink: a bounded in-memory ring
buffer (for ``/v1/metrics``-style introspection and tests) plus an
optional JSONL file.  Origination is gated by ``enabled`` and a
deterministic hash-based sample rate; *continuation* of a remote
context is always recorded — the origin already made the sampling
decision.  Spans started from a wire context collect their whole
subtree (:meth:`Span.collected`) so a shard or process-pool worker can
ship its spans back inside the reply payload.
"""

from __future__ import annotations

import json
import operator
import secrets
import threading
import time
from collections import deque
from typing import Optional, Union

__all__ = ["Span", "NULL_SPAN", "Tracer", "span_tree"]


def _attr_value(value):
    """Coerce a span attribute to a JSON-safe scalar (numpy ints and
    floats arrive from the GA hooks; they must cross JSON wire lanes)."""
    if value is None or isinstance(value, (bool, str, float)):
        return value
    if isinstance(value, int):
        return value
    try:
        return operator.index(value)  # np.int64 and friends
    except TypeError:
        pass
    try:
        return float(value)
    except (TypeError, ValueError):
        return str(value)


class Span:
    """One timed region of one request; see the module docstring."""

    __slots__ = (
        "name", "trace_id", "span_id", "parent_id", "attrs",
        "start_s", "wall_s", "duration_s", "_tracer", "_bucket", "_done",
    )

    def __init__(
        self,
        tracer: "Tracer",
        name: str,
        trace_id: str,
        parent_id: Optional[str],
        attrs: Optional[dict] = None,
        bucket: Optional[list] = None,
    ) -> None:
        self.name = str(name)
        self.trace_id = trace_id
        self.span_id = secrets.token_hex(4)
        self.parent_id = parent_id
        self.attrs = {}
        if attrs:
            self.set(**attrs)
        self.start_s = time.perf_counter()
        self.wall_s = time.time()
        self.duration_s: Optional[float] = None
        self._tracer = tracer
        self._bucket = bucket
        self._done = False

    # ------------------------------------------------------------------
    def context(self) -> dict:
        """Wire form of this span: the parent context a child on the
        other side of a process/socket boundary continues from."""
        return {"trace_id": self.trace_id, "span_id": self.span_id}

    def set(self, **attrs) -> "Span":
        for key, value in attrs.items():
            self.attrs[str(key)] = _attr_value(value)
        return self

    def fail(self, error: Union[str, BaseException]) -> "Span":
        self.attrs["error"] = (
            f"{type(error).__name__}: {error}"
            if isinstance(error, BaseException)
            else str(error)
        )
        return self

    def child(self, name: str, attrs: Optional[dict] = None) -> "Span":
        return self._tracer.start(name, parent=self, attrs=attrs)

    def collected(self) -> list:
        """Finished records of this span's collection bucket (only
        remote-rooted spans collect; close the span before harvesting)."""
        return list(self._bucket) if self._bucket is not None else []

    def adopt(self, records) -> None:
        """Graft finished records from another process (a process-pool
        worker's subtree) into this span's collection bucket."""
        if self._bucket is not None and records:
            self._bucket.extend(
                r for r in records if isinstance(r, dict)
            )

    def to_record(self) -> dict:
        return {
            "name": self.name,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "wall_s": round(self.wall_s, 6),
            "duration_s": round(self.duration_s or 0.0, 9),
            "attrs": dict(self.attrs),
        }

    # ------------------------------------------------------------------
    def close(self) -> None:
        if self._done:
            return
        self._done = True
        if self.duration_s is None:
            self.duration_s = time.perf_counter() - self.start_s
        record = self.to_record()
        if self._bucket is not None:
            self._bucket.append(record)
        self._tracer._record(record)

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc is not None:
            self.fail(exc)
        self.close()

    def __repr__(self) -> str:
        return (
            f"Span({self.name!r}, trace={self.trace_id}, "
            f"span={self.span_id}, parent={self.parent_id})"
        )


class _NullSpan:
    """The no-op span: tracing off costs attribute lookups, not writes."""

    __slots__ = ()
    trace_id = None
    span_id = None
    parent_id = None
    name = ""
    attrs: dict = {}

    def context(self) -> None:
        return None

    def set(self, **attrs) -> "_NullSpan":
        return self

    def fail(self, error) -> "_NullSpan":
        return self

    def child(self, name, attrs=None) -> "_NullSpan":
        return self

    def collected(self) -> list:
        return []

    def adopt(self, records) -> None:
        pass

    def close(self) -> None:
        pass

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        pass

    def __bool__(self) -> bool:
        return False

    def __repr__(self) -> str:
        return "NULL_SPAN"


NULL_SPAN = _NullSpan()


class Tracer:
    """Per-process span sink: bounded ring buffer + optional JSONL file.

    Lock discipline: ``_lock`` and ``_sink_lock`` are leaf locks — the
    ring append and the file write happen under them and nothing else
    does, so they can never participate in a lock-order cycle.
    """

    def __init__(
        self,
        enabled: bool = False,
        ring_size: int = 2048,
        jsonl_path: Optional[str] = None,
        sample_rate: float = 1.0,
    ) -> None:
        self.enabled = bool(enabled)
        self.sample_rate = float(sample_rate)
        self.jsonl_path = jsonl_path
        self._ring: deque = deque(maxlen=max(1, int(ring_size)))
        self._lock = threading.Lock()
        self._sink_lock = threading.Lock()
        self._sink = None
        self.recorded = 0
        self.ingested = 0
        self.sink_errors = 0

    # ------------------------------------------------------------------
    def start(
        self,
        name: str,
        parent: Union[Span, _NullSpan, dict, None] = None,
        attrs: Optional[dict] = None,
    ) -> Union[Span, _NullSpan]:
        """Start a span.  ``parent`` is a live :class:`Span`, a wire
        context dict from another process, or ``None`` to originate a
        new trace (subject to ``enabled`` and sampling)."""
        if isinstance(parent, _NullSpan):
            return NULL_SPAN
        if isinstance(parent, Span):
            return Span(
                self, name, parent.trace_id, parent.span_id,
                attrs=attrs, bucket=parent._bucket,
            )
        if isinstance(parent, dict):
            trace_id = str(parent.get("trace_id") or "")
            parent_id = str(parent.get("span_id") or "") or None
            if not trace_id:
                return NULL_SPAN
            # remote continuation: always recorded (origin sampled it),
            # and collected so the subtree can ride back in the reply
            return Span(self, name, trace_id, parent_id,
                        attrs=attrs, bucket=[])
        if not self.enabled:
            return NULL_SPAN
        trace_id = secrets.token_hex(8)
        if not self._sampled(trace_id):
            return NULL_SPAN
        return Span(self, name, trace_id, None, attrs=attrs)

    def emit(
        self,
        name: str,
        parent: Union[Span, _NullSpan, dict, None] = None,
        duration_s: float = 0.0,
        attrs: Optional[dict] = None,
    ) -> Union[Span, _NullSpan]:
        """Record an already-measured region as a finished span (the GA
        hooks time generations themselves)."""
        span = self.start(name, parent=parent, attrs=attrs)
        if isinstance(span, Span):
            span.duration_s = float(duration_s)
            span.close()
        return span

    def ingest(self, records) -> int:
        """Adopt finished span records produced by another process (a
        shard reply or process-pool job); returns how many were kept."""
        kept = []
        for record in records or ():
            if isinstance(record, dict) and record.get("trace_id"):
                kept.append(record)
        if not kept:
            return 0
        with self._lock:
            self._ring.extend(kept)
            self.ingested += len(kept)
        for record in kept:
            self._write_sink(record)
        return len(kept)

    # ------------------------------------------------------------------
    def records(self, trace_id: Optional[str] = None) -> list:
        with self._lock:
            out = list(self._ring)
        if trace_id is not None:
            out = [r for r in out if r.get("trace_id") == trace_id]
        return out

    def trace_ids(self) -> list:
        seen: dict = {}
        for record in self.records():
            seen.setdefault(record.get("trace_id"), None)
        return list(seen)

    def counters(self) -> dict:
        with self._lock:
            return {
                "spans_recorded": self.recorded,
                "spans_ingested": self.ingested,
                "ring_len": len(self._ring),
                "sink_errors": self.sink_errors,
            }

    def close(self) -> None:
        with self._sink_lock:
            if self._sink is not None:
                try:
                    self._sink.close()
                except OSError:
                    pass
                self._sink = None

    # ------------------------------------------------------------------
    def _sampled(self, trace_id: str) -> bool:
        if self.sample_rate >= 1.0:
            return True
        if self.sample_rate <= 0.0:
            return False
        # deterministic: the id's own entropy decides, no RNG draw
        return int(trace_id[:8], 16) / 0xFFFFFFFF < self.sample_rate

    def _record(self, record: dict) -> None:
        with self._lock:
            self._ring.append(record)
            self.recorded += 1
        self._write_sink(record)

    def _write_sink(self, record: dict) -> None:
        if self.jsonl_path is None:
            return
        line = json.dumps(record, sort_keys=True, default=str) + "\n"
        with self._sink_lock:
            try:
                if self._sink is None:
                    self._sink = open(self.jsonl_path, "a", encoding="utf-8")
                self._sink.write(line)
                self._sink.flush()
            except OSError:
                self.sink_errors += 1
                self.jsonl_path = None  # sink is gone; stop retrying


def span_tree(records, trace_id: Optional[str] = None) -> list:
    """Nest span records into parent→children trees (test/debug view).

    Returns the root records (parent absent from the set), each with a
    ``"children"`` list, sorted by wall stamp for stability."""
    if trace_id is not None:
        records = [r for r in records if r.get("trace_id") == trace_id]
    by_id = {r["span_id"]: dict(r, children=[]) for r in records}
    roots = []
    for record in sorted(
        by_id.values(), key=lambda r: (r.get("wall_s", 0.0), r["span_id"])
    ):
        parent = by_id.get(record.get("parent_id"))
        if parent is not None:
            parent["children"].append(record)
        else:
            roots.append(record)
    return roots
