"""GA progress and kernel profiling hooks.

The GA engine and the bincount/climb kernels sit far below the service
layer and must not know about tracers or registries — and they must
cost *nothing* when observability is off.  This module is the
decoupler: the engine calls :func:`emit_generation` after every
generation and probed kernels time themselves through
:func:`kernel_probe`, both of which bail on a single module-global
integer check unless a recorder is installed **on the current thread**
via :func:`recording`.

The thread-local scoping matters: the service pins each request's GA
run to one worker thread, so a recorder installed around one request's
execute never sees a neighbouring request's generations.

Everything recorded here is observational (per-generation best-cut /
evaluation counts as spans, kernel wall time as histograms); no value
flows back into the GA.
"""

from __future__ import annotations

import contextlib
import functools
import threading
import time
from typing import Optional

__all__ = [
    "ExecRecorder",
    "recording",
    "emit_generation",
    "kernel_probe",
    "active_recorder",
]

_STATE = threading.local()
_ACTIVE_LOCK = threading.Lock()
#: count of live recorders across all threads — the fast-path gate;
#: reads are lock-free (a stale read only skips/attempts a lookup)
_ACTIVE = 0


class ExecRecorder:
    """Records one request's GA progress under a parent span.

    Per-generation events become ``ga.generation`` child spans (the
    duration is the gap since the previous event, i.e. the generation's
    own wall time) and probed kernels land in the registry's
    ``repro_kernel_ms`` histogram.
    """

    def __init__(self, tracer, parent, registry=None) -> None:
        self.tracer = tracer
        self.parent = parent
        self.registry = registry
        self._mark_s = time.perf_counter()
        self.generations = 0

    def generation(
        self,
        generation: int,
        best_cut: float,
        best_worst_cut: float,
        evaluations: int,
        stopped_by: Optional[str] = None,
    ) -> None:
        now_s = time.perf_counter()
        gap_s = now_s - self._mark_s
        self._mark_s = now_s
        self.generations += 1
        attrs = {
            "generation": generation,
            "best_cut": best_cut,
            "best_worst_cut": best_worst_cut,
            "evaluations": evaluations,
        }
        if stopped_by is not None:
            attrs["stopped_by"] = stopped_by
        if self.tracer is not None:
            self.tracer.emit(
                "ga.generation", parent=self.parent,
                duration_s=gap_s, attrs=attrs,
            )
        if self.registry is not None:
            self.registry.inc("repro_ga_generations_total")

    def kernel(self, name: str, duration_s: float) -> None:
        if self.registry is not None:
            self.registry.observe(
                "repro_kernel_ms", duration_s * 1e3, kernel=name
            )


def active_recorder() -> Optional[ExecRecorder]:
    if not _ACTIVE:
        return None
    return getattr(_STATE, "recorder", None)


@contextlib.contextmanager
def recording(recorder: ExecRecorder):
    """Install ``recorder`` for the current thread for the duration."""
    global _ACTIVE
    previous = getattr(_STATE, "recorder", None)
    _STATE.recorder = recorder
    with _ACTIVE_LOCK:
        _ACTIVE += 1
    try:
        yield recorder
    finally:
        with _ACTIVE_LOCK:
            _ACTIVE -= 1
        _STATE.recorder = previous


def emit_generation(
    generation: int,
    best_cut: float,
    best_worst_cut: float,
    evaluations: int,
    stopped_by: Optional[str] = None,
) -> None:
    """Engine-side entry point; near-free when nothing records."""
    recorder = active_recorder()
    if recorder is not None:
        recorder.generation(
            generation, best_cut, best_worst_cut, evaluations,
            stopped_by=stopped_by,
        )


def kernel_probe(name: str):
    """Decorator timing a kernel into the active recorder's histogram;
    one global-int check when observability is off."""

    def decorate(fn):
        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            recorder = active_recorder()
            if recorder is None:
                return fn(*args, **kwargs)
            t0 = time.perf_counter()
            try:
                return fn(*args, **kwargs)
            finally:
                recorder.kernel(name, time.perf_counter() - t0)
        return wrapper

    return decorate
