"""Runtime lock-order witness: validate the static lock graph against
what the code actually does under test.

:class:`LockWitness` monkeypatches the ``threading.Lock`` /
``threading.RLock`` factories so every lock *created in repro source*
while the witness is active is wrapped in a recorder.  Each wrapped
lock is named by its **creation site** ``(file, line)`` — exactly the
definition site the static analyzer records per
:class:`~repro.analysis.locks.LockNode` — so observed behavior and the
extracted graph share a key.  Locks created by the stdlib (Condition
and Event internals, executors) have a ``threading.py`` creation frame
and are left untouched.

While active, the witness keeps a per-thread stack of held wrapped
locks and records a directed edge ``outer → inner`` whenever a lock is
acquired with others held.  Afterwards:

* :meth:`assert_subgraph_of` — every observed edge must exist in the
  statically extracted :class:`LockGraph` (the analyzer never
  under-approximates reality on the exercised paths).
* :meth:`assert_never_held_during` — a given lock was never held while
  a probed function ran; :func:`probe` wraps e.g.
  ``IncrementalGAPartitioner.run_pending`` so tests can assert the
  session *state* lock is never held across a GA run on the overlapped
  path.

The witness only observes same-process locks — shard *processes* have
their own interpreters — so tests drive the in-process service when
they want witness coverage.
"""

from __future__ import annotations

import threading
from pathlib import Path
from typing import Callable, Iterable, Optional

__all__ = ["LockWitness", "WitnessViolation"]

_REAL_LOCK = threading.Lock
_REAL_RLOCK = threading.RLock


class WitnessViolation(AssertionError):
    """An observed acquisition contradicts the claimed discipline."""


class _WrappedLock:
    """A recording proxy around a real lock primitive."""

    def __init__(self, real, site: tuple, witness: "LockWitness") -> None:
        self._real = real
        self._site = site
        self._witness = witness

    # context manager + primitive protocol (Condition-compatible)
    def acquire(self, blocking: bool = True, timeout: float = -1):
        ok = self._real.acquire(blocking, timeout)
        if ok:
            self._witness._on_acquire(self)
        return ok

    def release(self) -> None:
        self._witness._on_release(self)
        self._real.release()

    def __enter__(self):
        self.acquire()
        return self

    def __exit__(self, *exc) -> None:
        self.release()

    def locked(self) -> bool:
        return self._real.locked()

    def __repr__(self) -> str:
        return f"WrappedLock({self._site[0]}:{self._site[1]})"


class LockWitness:
    """Context manager that records lock-acquisition order.

    Parameters
    ----------
    source_prefixes:
        Only locks whose creation frame lives under one of these path
        prefixes are wrapped (default: the ``repro`` package source
        tree).  Everything else — stdlib, test scaffolding — passes
        through unwrapped.
    """

    def __init__(self, source_prefixes: Optional[Iterable[str]] = None) -> None:
        if source_prefixes is None:
            source_prefixes = [str(Path(__file__).resolve().parent.parent)]
        self.prefixes = [str(Path(p).resolve()) for p in source_prefixes]
        #: observed (outer_site, inner_site) -> count
        self.edges: dict = {}
        #: creation site -> number of locks created there
        self.created: dict = {}
        self._tls = threading.local()
        self._active = False
        self._probes: list = []
        self._probe_events: list = []
        # NOTE deliberately lock-free: recording uses only GIL-atomic
        # dict/list operations.  The witness runs around code that may
        # *fork* (the sharded fleet's constructor); a recorder mutex
        # held by any thread at fork time would deadlock the child's
        # first wrapped acquire.  A racy lost count is harmless — edge
        # *presence* is what the assertions consume, and two threads
        # first-inserting the same key both write it.

    # -- factory patching ----------------------------------------------
    def _creation_site(self) -> Optional[tuple]:
        """The immediate caller of ``threading.Lock()``.

        Only the direct creation frame counts: a lock created *by the
        stdlib on behalf of* repro code (a Future's internal Condition,
        an executor's queue) is stdlib state and must stay unwrapped —
        Condition's no-arg RLock in particular relies on the real
        RLock's ``_is_owned``.
        """
        import sys

        frame = sys._getframe(2)
        filename = str(Path(frame.f_code.co_filename).resolve())
        if any(filename.startswith(p) for p in self.prefixes):
            return (filename, frame.f_lineno)
        return None

    def _make_lock(self):
        site = self._creation_site()
        real = _REAL_LOCK()
        if site is None:
            return real
        self.created[site] = self.created.get(site, 0) + 1
        return _WrappedLock(real, site, self)

    def _make_rlock(self):
        site = self._creation_site()
        real = _REAL_RLOCK()
        if site is None:
            return real
        self.created[site] = self.created.get(site, 0) + 1
        return _WrappedLock(real, site, self)

    # -- recording -----------------------------------------------------
    def _held_stack(self) -> list:
        stack = getattr(self._tls, "stack", None)
        if stack is None:
            stack = self._tls.stack = []
        return stack

    def _on_acquire(self, lock: _WrappedLock) -> None:
        stack = self._held_stack()
        for held in stack:
            if held is lock:
                continue
            edge = (held._site, lock._site)
            self.edges[edge] = self.edges.get(edge, 0) + 1
        for probe_name, _fn in self._active_probes():
            self._probe_events.append(
                ("acquire-under-probe", probe_name, lock._site)
            )
        stack.append(lock)

    def _on_release(self, lock: _WrappedLock) -> None:
        stack = self._held_stack()
        for i in range(len(stack) - 1, -1, -1):
            if stack[i] is lock:
                del stack[i]
                return

    def _active_probes(self) -> list:
        return getattr(self._tls, "probes", [])

    # -- probes --------------------------------------------------------
    def probe(self, owner, attr: str) -> None:
        """Wrap ``owner.attr`` (an unbound function) so the witness can
        tell which locks are held *on the calling thread* while it runs.
        Restored on exit."""
        original = getattr(owner, attr)
        witness = self
        name = f"{getattr(owner, '__name__', owner)}.{attr}"

        def wrapper(*args, **kwargs):
            held = [lock._site for lock in witness._held_stack()]
            witness._probe_events.append(("probe-run", name, tuple(held)))
            probes = getattr(witness._tls, "probes", None)
            if probes is None:
                probes = witness._tls.probes = []
            probes.append((name, original))
            try:
                return original(*args, **kwargs)
            finally:
                probes.pop()

        self._probes.append((owner, attr, original))
        setattr(owner, attr, wrapper)

    def probe_runs(self, name_suffix: str) -> list:
        """Held-lock snapshots for every run of a probed function."""
        return [
            held
            for kind, name, held in list(self._probe_events)
            if kind == "probe-run" and name.endswith(name_suffix)
        ]

    # -- lifecycle -----------------------------------------------------
    def __enter__(self) -> "LockWitness":
        if self._active:  # pragma: no cover - defensive
            raise RuntimeError("LockWitness is not reentrant")
        self._active = True
        threading.Lock = self._make_lock
        threading.RLock = self._make_rlock
        return self

    def __exit__(self, *exc) -> None:
        threading.Lock = _REAL_LOCK
        threading.RLock = _REAL_RLOCK
        for owner, attr, original in reversed(self._probes):
            setattr(owner, attr, original)
        self._probes.clear()
        self._active = False

    # -- assertions ----------------------------------------------------
    def observed_edges(self) -> dict:
        return dict(self.edges)

    def _node_name(self, graph, site: tuple) -> str:
        node = graph.node_at(site[0], site[1])
        if node is not None:
            return node.name
        return f"{Path(site[0]).name}:{site[1]}"

    def assert_subgraph_of(
        self,
        graph,
        ignore: Optional[Callable[[tuple, tuple], bool]] = None,
    ) -> list:
        """Every observed edge must exist in the static graph.

        Edges between locks the static pass has no node for (e.g.
        test-local locks) are reported only when both endpoints map to
        static nodes.  Returns the list of mapped observed edges, as
        ``(outer_name, inner_name)`` pairs.
        """
        mapped = []
        missing = []
        for (outer_site, inner_site), count in self.observed_edges().items():
            if ignore is not None and ignore(outer_site, inner_site):
                continue
            outer = graph.node_at(*outer_site)
            inner = graph.node_at(*inner_site)
            if outer is None or inner is None:
                continue  # lock unknown to the static pass: not its claim
            mapped.append((outer.name, inner.name))
            if not graph.has_edge(outer.name, inner.name):
                missing.append(
                    f"{outer.name} -> {inner.name} (observed {count}x, "
                    "absent from the static lock graph)"
                )
        if missing:
            raise WitnessViolation(
                "observed lock order is not a subgraph of the static "
                "graph:\n  " + "\n  ".join(missing)
            )
        return mapped

    def assert_never_held_during(self, graph, lock_name: str,
                                 probe_suffix: str) -> int:
        """Assert the named static lock was never held while a probed
        function ran; returns how many probe runs were checked."""
        runs = self.probe_runs(probe_suffix)
        for held in runs:
            names = [self._node_name(graph, site) for site in held]
            if lock_name in names:
                raise WitnessViolation(
                    f"{lock_name} held during {probe_suffix} "
                    f"(held stack: {names})"
                )
        return len(runs)
