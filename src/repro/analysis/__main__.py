"""``python -m repro.analysis`` — the invariant-lint CLI.

Exit status: 0 when no unsuppressed findings survive filtering (or
``--gate`` is off), 1 when the gate fails, 2 on usage/parse errors.

Examples
--------
Gate the library (CI's configuration)::

    PYTHONPATH=src python -m repro.analysis src --gate --json report.json

Report-only over scripts, tolerating existing debt::

    PYTHONPATH=src python -m repro.analysis benchmarks examples \
        --baseline analysis-baseline.json
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Optional

from .framework import (
    apply_baseline,
    default_config,
    load_baseline,
    registered_rules,
    run_analysis,
    write_baseline,
)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="invariant lint for the repro codebase "
        "(determinism, lock discipline, wire hygiene)",
    )
    parser.add_argument(
        "paths", nargs="*", default=["src"],
        help="files/directories to analyze (default: src)",
    )
    parser.add_argument(
        "--gate", action="store_true",
        help="exit 1 if any unsuppressed finding remains",
    )
    parser.add_argument(
        "--json", nargs="?", const="-", default=None, metavar="PATH",
        help="write the JSON report to PATH ('-' or bare flag: stdout)",
    )
    parser.add_argument(
        "--baseline", default=None, metavar="PATH",
        help="tolerate findings whose fingerprints appear in this file",
    )
    parser.add_argument(
        "--write-baseline", default=None, metavar="PATH",
        help="record current unsuppressed findings as tolerated debt",
    )
    parser.add_argument(
        "--rules", default=None, metavar="ID[,ID...]",
        help="run only these rule ids",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalogue and exit",
    )
    parser.add_argument(
        "--quiet", action="store_true",
        help="suppress the human-readable report on stdout",
    )
    return parser


def main(argv: Optional[list] = None) -> int:
    args = build_parser().parse_args(argv)

    if args.list_rules:
        for rule_id, fn in sorted(registered_rules().items()):
            doc = (fn.__doc__ or "").strip().splitlines()
            print(f"{rule_id}: {doc[0] if doc else ''}".rstrip(": "))
        print("LOCK-HELD-BLOCKING: lock held across a blocking call")
        print("LOCK-ORDER-CYCLE: cycle in the lock-acquisition graph")
        print("SUPPRESS-NO-REASON: suppression comment without a reason")
        return 0

    rules = None
    if args.rules:
        rules = [r.strip() for r in args.rules.split(",") if r.strip()]

    report = run_analysis(args.paths, config=default_config(), rules=rules)

    gating = report.unsuppressed
    if args.baseline:
        try:
            gating = apply_baseline(report, load_baseline(args.baseline))
        except (OSError, ValueError, json.JSONDecodeError) as exc:
            print(f"error: cannot read baseline {args.baseline}: {exc}",
                  file=sys.stderr)
            return 2
    if args.write_baseline:
        n = write_baseline(report, args.write_baseline)
        print(f"baseline: recorded {n} fingerprint(s) to "
              f"{args.write_baseline}", file=sys.stderr)

    if args.json is not None:
        payload = report.to_json()
        payload["summary"]["gating"] = len(gating)
        text = json.dumps(payload, indent=2, sort_keys=True)
        if args.json == "-":
            print(text)
        else:
            with open(args.json, "w") as fh:
                fh.write(text + "\n")

    if not args.quiet and args.json != "-":
        print(report.render_text())
        if args.baseline and len(gating) != len(report.unsuppressed):
            print(
                f"baseline: {len(report.unsuppressed) - len(gating)} "
                "finding(s) tolerated"
            )

    if report.parse_errors:
        return 2
    if args.gate and gating:
        print(
            f"gate: FAILED — {len(gating)} unsuppressed finding(s)",
            file=sys.stderr,
        )
        return 1
    if args.gate:
        print("gate: OK — zero unsuppressed findings", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
