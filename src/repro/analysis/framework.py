"""Checker framework of :mod:`repro.analysis` (see package docstring).

The framework is deliberately dependency-free (stdlib ``ast`` +
``tokenize`` only): the analysis gate must be runnable in a bare CI
container and importable without dragging in the numeric stack.

Concepts
--------

* A **rule** is a function ``(FileContext, AnalysisConfig) ->
  Iterable[Finding]`` registered under a stable id (``DET-GLOBAL-RNG``,
  ``LOCK-HELD-BLOCKING``, ...) via the :func:`rule` decorator.  Rules
  are *per-file*; whole-project passes (the lock-graph extraction)
  register with :func:`project_rule` and receive every
  :class:`FileContext` at once.
* A **suppression** is the comment ``# repro: allow[RULE-ID] — reason``
  on the flagged line or the line directly above it.  The reason is
  **mandatory**: a reasonless suppression does not suppress and
  additionally raises a :data:`SUPPRESS_NO_REASON` finding, so the gate
  forces every opt-out to be justified in the diff.
* **Per-file config**: :attr:`AnalysisConfig.per_file_disable` maps
  glob patterns to rule ids disabled for matching files (e.g. benchmark
  scripts may use wall-clock freely).
* A **baseline** is a JSON list of finding fingerprints to tolerate —
  the adoption path for pre-existing debt.  Fingerprints hash the rule
  id, the repo-relative path, and the *text* of the flagged line, so
  they survive unrelated line drift.
"""

from __future__ import annotations

import ast
import dataclasses
import fnmatch
import hashlib
import io
import json
import re
import tokenize
from pathlib import Path
from typing import Callable, Iterable, Iterator, Optional

__all__ = [
    "AnalysisConfig",
    "AnalysisReport",
    "FileContext",
    "Finding",
    "Suppression",
    "SUPPRESS_NO_REASON",
    "default_config",
    "iter_python_files",
    "load_baseline",
    "parse_suppressions",
    "project_rule",
    "registered_rules",
    "rule",
    "run_analysis",
]

#: meta-rule id raised for ``# repro: allow[...]`` comments without a
#: reason; never suppressible (a suppression cannot excuse itself)
SUPPRESS_NO_REASON = "SUPPRESS-NO-REASON"

_SUPPRESS_RE = re.compile(
    r"#\s*repro:\s*allow\[(?P<rules>[A-Za-z0-9_\-, ]+)\]"
    r"\s*(?:[—–-]+\s*(?P<reason>.*?))?\s*$"
)

#: variable/attribute/function names that mark a wall-clock value as
#: timing bookkeeping (budgets, latencies, deadlines) rather than data
DEFAULT_TIMING_NAME_RE = (
    r"(time|clock|second|latenc|elapsed|deadline|budget|remain|duration"
    r"|interval|timeout|created|expire|age|stamp|wall|percentile|stats"
    r"|span|trace|probe|mark"
    r"|_at$|_s$|_ms$|_ns$|t\d+$|^now$|^start|_start|^end$|_end$|uptime)"
)


@dataclasses.dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule: str
    path: str
    line: int
    message: str
    suppressed: bool = False
    reason: str = ""

    def fingerprint(self, line_text: str = "") -> str:
        raw = f"{self.rule}|{_relish(self.path)}|{line_text.strip()}"
        return hashlib.sha1(raw.encode()).hexdigest()[:16]


@dataclasses.dataclass(frozen=True)
class Suppression:
    """A parsed ``# repro: allow[...]`` comment."""

    line: int
    rules: tuple[str, ...]
    reason: str


@dataclasses.dataclass
class AnalysisConfig:
    """Tunable knobs of a run (defaults = this repository's contract)."""

    #: glob pattern -> rule ids disabled for matching files
    per_file_disable: dict = dataclasses.field(default_factory=dict)
    #: lock nodes that exist to serialize blocking work and therefore
    #: *may* be held across blocking calls (the session compute lock)
    compute_locks: frozenset = frozenset({"Session.compute_lock"})
    #: regex marking names that legitimately carry wall-clock values
    timing_name_re: str = DEFAULT_TIMING_NAME_RE
    #: files where any pickle use is a wire-hygiene violation
    pickle_banned_globs: tuple = (
        "*/service/models.py",
        "*/service/transport.py",
        "*/service/http.py",
        "*/service/eventloop.py",
        "*/service/client.py",
        "*/service/ring.py",
    )
    #: files whose raised library exceptions must be reconstructable by
    #: :func:`repro.service.models.error_from_wire` (shard-side code)
    wire_error_globs: tuple = ("*/service/*.py",)
    #: wire-error scope exclusions (front-side boundary files whose
    #: exceptions are handled locally and never cross a transport)
    wire_error_exclude_globs: tuple = (
        "*/service/http.py",
        "*/service/client.py",
    )
    #: extra exception class names known to reconstruct across
    #: ``error_to_wire`` (augmented from any analyzed ``errors.py``)
    registered_errors: frozenset = frozenset()
    #: rule ids to skip entirely
    disabled_rules: frozenset = frozenset()

    def rule_enabled(self, rule_id: str, path: str) -> bool:
        if rule_id in self.disabled_rules:
            return False
        rel = _relish(path)
        for pattern, rules in self.per_file_disable.items():
            if fnmatch.fnmatch(rel, pattern) and rule_id in rules:
                return False
        return True

    def matches(self, path: str, globs: Iterable[str]) -> bool:
        rel = _relish(path)
        return any(fnmatch.fnmatch(rel, g) for g in globs)


def default_config() -> AnalysisConfig:
    """The repository's default analysis configuration."""
    return AnalysisConfig()


def _relish(path: str) -> str:
    """Forward-slashed path for glob matching and stable fingerprints."""
    return str(path).replace("\\", "/")


def parse_suppressions(source: str) -> dict[int, Suppression]:
    """All ``# repro: allow[...]`` comments of a file, keyed by line.

    A suppression's reason may continue over following comment-only
    lines (a comment block above the flagged statement); continuation
    text is folded into the reason.
    """
    out: dict[int, Suppression] = {}
    lines = source.splitlines()
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for tok in tokens:
            if tok.type != tokenize.COMMENT:
                continue
            match = _SUPPRESS_RE.search(tok.string)
            if match is None:
                continue
            rules = tuple(
                part.strip()
                for part in match.group("rules").split(",")
                if part.strip()
            )
            reason = (match.group("reason") or "").strip()
            # fold contiguous comment-only continuation lines in
            cur = tok.start[0]
            while reason and cur < len(lines):
                text = lines[cur].strip()
                if not text.startswith("#") or _SUPPRESS_RE.search(text):
                    break
                reason = f"{reason} {text.lstrip('# ').strip()}"
                cur += 1
            out[tok.start[0]] = Suppression(tok.start[0], rules, reason)
    except tokenize.TokenError:
        pass  # unterminated strings etc.: no comments past the error
    return out


class FileContext:
    """One parsed file handed to every per-file rule."""

    def __init__(self, path: str, source: str, tree: ast.AST) -> None:
        self.path = path
        self.source = source
        self.tree = tree
        self.lines = source.splitlines()
        self.suppressions = parse_suppressions(source)

    def line_text(self, line: int) -> str:
        if 1 <= line <= len(self.lines):
            return self.lines[line - 1]
        return ""

    def suppression_for(self, rule_id: str, line: int) -> Optional[Suppression]:
        """The suppression covering ``rule_id`` at ``line``: a comment
        on the flagged line itself, on the line directly above it, or
        anywhere in the contiguous comment block directly above it."""
        sup = self.suppressions.get(line)
        if sup is not None and rule_id in sup.rules:
            return sup
        cur = line - 1
        while cur >= 1:
            sup = self.suppressions.get(cur)
            if sup is not None and rule_id in sup.rules:
                return sup
            # keep walking only while inside a pure comment block (a
            # trailing comment on a code line was checked just above)
            if not self.line_text(cur).strip().startswith("#"):
                break
            cur -= 1
        return None

    def finding(self, rule_id: str, node, message: str) -> Finding:
        """Build a finding, resolving the suppression state."""
        line = node if isinstance(node, int) else getattr(node, "lineno", 1)
        sup = self.suppression_for(rule_id, line)
        if sup is not None and sup.reason:
            return Finding(
                rule_id, self.path, line, message,
                suppressed=True, reason=sup.reason,
            )
        return Finding(rule_id, self.path, line, message)


# ----------------------------------------------------------------------
# rule registry
# ----------------------------------------------------------------------

_RULES: dict[str, Callable] = {}
_PROJECT_RULES: dict[str, Callable] = {}


def rule(rule_id: str) -> Callable:
    """Register a per-file rule under ``rule_id``."""

    def decorate(fn: Callable) -> Callable:
        fn.rule_id = rule_id
        _RULES[rule_id] = fn
        return fn

    return decorate


def project_rule(name: str) -> Callable:
    """Register a whole-project pass (receives every FileContext)."""

    def decorate(fn: Callable) -> Callable:
        _PROJECT_RULES[name] = fn
        return fn

    return decorate


def registered_rules() -> dict[str, Callable]:
    _ensure_rules_loaded()
    return dict(_RULES)


def _ensure_rules_loaded() -> None:
    """Import the rule modules exactly once (registration side effect)."""
    from . import det, hygiene, locks, wire  # noqa: F401


# ----------------------------------------------------------------------
# running
# ----------------------------------------------------------------------

def iter_python_files(paths: Iterable[str]) -> Iterator[Path]:
    """Every ``*.py`` under the given files/directories, sorted, with
    caches and hidden directories skipped."""
    seen = set()
    for raw in paths:
        p = Path(raw)
        candidates = [p] if p.is_file() else sorted(p.rglob("*.py"))
        for path in candidates:
            if path.suffix != ".py":
                continue
            if any(
                part == "__pycache__" or part.startswith(".")
                for part in path.parts
            ):
                continue
            resolved = path.resolve()
            if resolved not in seen:
                seen.add(resolved)
                yield path


@dataclasses.dataclass
class AnalysisReport:
    """Everything one analysis run produced."""

    findings: list = dataclasses.field(default_factory=list)
    parse_errors: list = dataclasses.field(default_factory=list)
    lock_graph: Optional[object] = None  # locks.LockGraph
    n_files: int = 0

    @property
    def unsuppressed(self) -> list:
        return [f for f in self.findings if not f.suppressed]

    @property
    def suppressed(self) -> list:
        return [f for f in self.findings if f.suppressed]

    # -- rendering -----------------------------------------------------
    def to_json(self) -> dict:
        graph = self.lock_graph
        return {
            "summary": {
                "files": self.n_files,
                "findings": len(self.findings),
                "unsuppressed": len(self.unsuppressed),
                "suppressed": len(self.suppressed),
                "parse_errors": len(self.parse_errors),
            },
            "findings": [
                {
                    "rule": f.rule,
                    "path": _relish(f.path),
                    "line": f.line,
                    "message": f.message,
                    "suppressed": f.suppressed,
                    "reason": f.reason,
                    "fingerprint": f.fingerprint(self._line_text(f)),
                }
                for f in self.findings
            ],
            "parse_errors": list(self.parse_errors),
            "lock_graph": None if graph is None else graph.to_json(),
        }

    def _line_text(self, finding: Finding) -> str:
        ctx = self._contexts.get(finding.path) if hasattr(self, "_contexts") else None
        return ctx.line_text(finding.line) if ctx is not None else ""

    def render_text(self) -> str:
        lines = []
        for f in sorted(
            self.findings, key=lambda f: (_relish(f.path), f.line, f.rule)
        ):
            mark = "suppressed: " if f.suppressed else ""
            lines.append(
                f"{_relish(f.path)}:{f.line}: [{f.rule}] {mark}{f.message}"
            )
            if f.suppressed:
                lines.append(f"    reason: {f.reason}")
        for path, error in self.parse_errors:
            lines.append(f"{_relish(path)}: parse error: {error}")
        graph = self.lock_graph
        graph_bit = ""
        if graph is not None:
            graph_bit = (
                f"; lock graph: {len(graph.nodes)} locks, "
                f"{len(graph.edges)} edges, {len(graph.cycles)} cycles"
            )
        lines.append(
            f"{len(self.findings)} finding(s) in {self.n_files} file(s) "
            f"({len(self.unsuppressed)} unsuppressed, "
            f"{len(self.suppressed)} suppressed){graph_bit}"
        )
        return "\n".join(lines)


def run_analysis(
    paths: Iterable[str],
    config: Optional[AnalysisConfig] = None,
    rules: Optional[Iterable[str]] = None,
) -> AnalysisReport:
    """Analyze every Python file under ``paths``.

    ``rules`` restricts the per-file rule set (project passes — the
    lock analysis — always run; their findings are filtered instead).
    """
    _ensure_rules_loaded()
    config = config or default_config()
    report = AnalysisReport()
    contexts: list[FileContext] = []
    for path in iter_python_files(paths):
        report.n_files += 1
        try:
            source = path.read_text(encoding="utf-8")
            tree = ast.parse(source, filename=str(path))
        except (SyntaxError, UnicodeDecodeError, OSError) as exc:
            report.parse_errors.append((str(path), str(exc)))
            continue
        contexts.append(FileContext(str(path), source, tree))
    report._contexts = {ctx.path: ctx for ctx in contexts}

    selected = set(rules) if rules is not None else None
    for ctx in contexts:
        # reasonless suppressions are findings in their own right
        for sup in ctx.suppressions.values():
            if not sup.reason:
                report.findings.append(
                    Finding(
                        SUPPRESS_NO_REASON,
                        ctx.path,
                        sup.line,
                        "suppression needs a reason: "
                        "# repro: allow[RULE] — <why this is safe>",
                    )
                )
        for rule_id, fn in _RULES.items():
            if selected is not None and rule_id not in selected:
                continue
            if not config.rule_enabled(rule_id, ctx.path):
                continue
            report.findings.extend(fn(ctx, config))

    for fn in _PROJECT_RULES.values():
        fn(contexts, config, report)
    if selected is not None:
        report.findings = [
            f
            for f in report.findings
            if f.rule in selected or f.rule == SUPPRESS_NO_REASON
        ]
    return report


# ----------------------------------------------------------------------
# baselines
# ----------------------------------------------------------------------

def load_baseline(path: str) -> frozenset:
    """Fingerprints from a ``--write-baseline`` file."""
    data = json.loads(Path(path).read_text())
    if isinstance(data, dict):
        data = data.get("fingerprints", [])
    return frozenset(str(fp) for fp in data)


def apply_baseline(report: AnalysisReport, baseline: frozenset) -> list:
    """Unsuppressed findings not excused by the baseline."""
    fresh = []
    for f in report.unsuppressed:
        if f.fingerprint(report._line_text(f)) not in baseline:
            fresh.append(f)
    return fresh


def write_baseline(report: AnalysisReport, path: str) -> int:
    """Record the current unsuppressed findings as tolerated debt."""
    fingerprints = sorted(
        f.fingerprint(report._line_text(f)) for f in report.unsuppressed
    )
    Path(path).write_text(
        json.dumps({"fingerprints": fingerprints}, indent=2) + "\n"
    )
    return len(fingerprints)
