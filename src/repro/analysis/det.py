"""DET rules: determinism hazards.

The repo's headline guarantee is bit-identical answers across serving
topologies, which only holds if every source of nondeterminism is
funneled through explicitly seeded :class:`numpy.random.Generator`
state.  These rules ban the three leak paths we have actually had to
hunt by hand:

* ``DET-GLOBAL-RNG`` — calls into process-global RNG state
  (``np.random.<dist>()`` without a ``Generator``, ``random.*``,
  ``random.seed``) and bare ``import random``.
* ``DET-WALLCLOCK`` — wall-clock reads (``time.time``,
  ``perf_counter`` …) flowing into *results* (returned values or
  non-timing-named state) instead of budgets/metrics.
* ``DET-SET-ORDER`` — iterating a set/frozenset (or materializing one
  into an ordered container) where the order feeds downstream compute;
  CPython set order varies with insertion history and hash
  randomization.
"""

from __future__ import annotations

import ast
import re
from typing import Iterable, Iterator

from .framework import AnalysisConfig, FileContext, Finding, rule

__all__ = ["DET_GLOBAL_RNG", "DET_WALLCLOCK", "DET_SET_ORDER"]

DET_GLOBAL_RNG = "DET-GLOBAL-RNG"
DET_WALLCLOCK = "DET-WALLCLOCK"
DET_SET_ORDER = "DET-SET-ORDER"

#: np.random attributes that are *not* global-state draws
_NP_RANDOM_OK = {"Generator", "default_rng", "SeedSequence", "BitGenerator",
                 "PCG64", "Philox", "SFC64", "MT19937"}

#: wall-clock reads (time.X / datetime.datetime.now / np.datetime64('now'))
_WALLCLOCK_ATTRS = {"time", "perf_counter", "monotonic", "process_time",
                    "thread_time", "time_ns", "perf_counter_ns",
                    "monotonic_ns"}


def _dotted(node: ast.AST) -> str:
    """``a.b.c`` for nested attributes, '' otherwise."""
    parts = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return ""


# ----------------------------------------------------------------------
# DET-GLOBAL-RNG
# ----------------------------------------------------------------------

@rule(DET_GLOBAL_RNG)
def check_global_rng(
    ctx: FileContext, config: AnalysisConfig
) -> Iterator[Finding]:
    """global / unseeded RNG use breaks replayability"""
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "random":
                    yield ctx.finding(
                        DET_GLOBAL_RNG, node,
                        "bare 'import random' — stdlib random is "
                        "process-global state; use a seeded "
                        "np.random.Generator",
                    )
        elif isinstance(node, ast.ImportFrom):
            if node.module == "random":
                yield ctx.finding(
                    DET_GLOBAL_RNG, node,
                    "'from random import ...' — stdlib random is "
                    "process-global state; use a seeded "
                    "np.random.Generator",
                )
        elif isinstance(node, ast.Call):
            name = _dotted(node.func)
            if not name:
                continue
            parts = name.split(".")
            # np.random.shuffle(...) / numpy.random.standard_normal(...)
            if (
                len(parts) >= 3
                and parts[-2] == "random"
                and parts[0] in ("np", "numpy")
                and parts[-1] not in _NP_RANDOM_OK
            ):
                yield ctx.finding(
                    DET_GLOBAL_RNG, node,
                    f"'{name}()' draws from numpy's process-global RNG; "
                    "thread a seeded np.random.Generator instead",
                )
            # random.seed() / random.random() on the stdlib module
            elif parts[0] == "random" and len(parts) == 2:
                yield ctx.finding(
                    DET_GLOBAL_RNG, node,
                    f"'{name}()' uses stdlib process-global RNG; "
                    "thread a seeded np.random.Generator instead",
                )


# ----------------------------------------------------------------------
# DET-WALLCLOCK
# ----------------------------------------------------------------------

def _is_wallclock_call(node: ast.AST) -> bool:
    if not isinstance(node, ast.Call):
        return False
    name = _dotted(node.func)
    parts = name.split(".")
    if len(parts) == 2 and parts[0] == "time" and parts[1] in _WALLCLOCK_ATTRS:
        return True
    if name.endswith("datetime.now") or name.endswith("datetime.utcnow"):
        return True
    return False


#: calls the clock taint flows *through* (pure converters); any other
#: call result is presumed a metrics/formatting transform and opaque
_TRANSPARENT_CALLS = {"float", "int", "round", "abs", "min", "max", "sum"}


def _contains_wallclock(node: ast.AST, tainted: set) -> bool:
    if _is_wallclock_call(node):
        return True
    if isinstance(node, ast.Name):
        return node.id in tainted
    if isinstance(node, ast.Call):
        base = _dotted(node.func).split(".")[-1]
        if base in _TRANSPARENT_CALLS:
            return any(_contains_wallclock(a, tainted) for a in node.args)
        # opaque: f(clock) returns metrics, not the clock itself — the
        # seed-argument check below looks inside RNG calls explicitly
        return False
    return any(
        _contains_wallclock(child, tainted)
        for child in ast.iter_child_nodes(node)
    )


def _target_names(target: ast.AST):
    """``(kind, name)`` pairs a store target binds: ``("name", x)`` for
    plain locals (taintable), ``("attr", a)`` for attribute stores."""
    if isinstance(target, ast.Name):
        yield ("name", target.id)
    elif isinstance(target, ast.Attribute):
        yield ("attr", target.attr)
    elif isinstance(target, (ast.Tuple, ast.List)):
        for el in target.elts:
            yield from _target_names(el)
    elif isinstance(target, (ast.Subscript, ast.Starred)):
        yield from _target_names(target.value)


def _walk_own(fn: ast.AST) -> Iterator[ast.AST]:
    """Walk a function/module body without descending into nested
    function or class definitions (they get their own visit)."""
    for child in ast.iter_child_nodes(fn):
        yield child
        if isinstance(
            child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef,
                    ast.Lambda)
        ):
            continue
        yield from _walk_own(child)


@rule(DET_WALLCLOCK)
def check_wallclock(
    ctx: FileContext, config: AnalysisConfig
) -> Iterator[Finding]:
    """wall-clock value flows into results or seeds"""
    timing_re = re.compile(config.timing_name_re, re.IGNORECASE)

    def timing_named(name: str) -> bool:
        return bool(timing_re.search(name))

    for fn in ast.walk(ctx.tree):
        if not isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        fn_is_timing = timing_named(fn.name)
        tainted: set = set()
        for node in _walk_own(fn):
            if isinstance(node, ast.Assign):
                if not _contains_wallclock(node.value, tainted):
                    continue
                for target in node.targets:
                    for kind, name in _target_names(target):
                        if timing_named(name):
                            continue
                        if kind == "name":
                            tainted.add(name)
                        where = (
                            f"assigned to '{name}'"
                            if kind == "name"
                            else f"stored on attribute '{name}'"
                        )
                        yield ctx.finding(
                            DET_WALLCLOCK, node,
                            f"wall-clock value {where} — name it as "
                            "timing (t0/latency/deadline/..._s) or keep "
                            "clocks out of results",
                        )
            elif isinstance(node, ast.Return) and node.value is not None:
                if fn_is_timing:
                    continue
                if _contains_wallclock(node.value, tainted):
                    yield ctx.finding(
                        DET_WALLCLOCK, node,
                        f"'{fn.name}' returns a wall-clock-derived value "
                        "but is not named as a timing helper — clocks "
                        "belong in budgets/metrics, not results",
                    )
            elif isinstance(node, ast.Call):
                # seeding RNG state from the clock is the cardinal sin
                name = _dotted(node.func)
                seedish = name.endswith("default_rng") or name.endswith(".seed")
                args = list(node.args) + [kw.value for kw in node.keywords]
                if seedish and any(
                    _contains_wallclock(a, tainted) for a in args
                ):
                    yield ctx.finding(
                        DET_WALLCLOCK, node,
                        "RNG seeded from the wall clock — seeds must be "
                        "explicit and recorded",
                    )


# ----------------------------------------------------------------------
# DET-SET-ORDER
# ----------------------------------------------------------------------

#: materializers that freeze an iteration order into an ordered result
_ORDERING_SINKS = {"list", "tuple", "enumerate", "array", "asarray",
                   "fromiter", "concatenate", "stack"}


def _is_unordered_expr(node: ast.AST, tainted: set) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Name) and node.id in tainted:
        return True
    if isinstance(node, ast.Call):
        name = _dotted(node.func)
        base = name.split(".")[-1]
        if base in ("set", "frozenset"):
            return True
        # set ops on tainted operands: s.union(...), s.difference(...)
        if base in ("union", "intersection", "difference",
                    "symmetric_difference") and isinstance(
                        node.func, ast.Attribute):
            return _is_unordered_expr(node.func.value, tainted)
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
    ):
        return _is_unordered_expr(node.left, tainted) or _is_unordered_expr(
            node.right, tainted
        )
    return False


@rule(DET_SET_ORDER)
def check_set_order(
    ctx: FileContext, config: AnalysisConfig
) -> Iterator[Finding]:
    """iteration order of an unordered set can reach output"""
    for fn in ast.walk(ctx.tree):
        if not isinstance(
            fn, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Module)
        ):
            continue
        tainted: set = set()
        for node in _walk_own(fn):
            if isinstance(node, ast.Assign):
                if _is_unordered_expr(node.value, tainted):
                    for target in node.targets:
                        if isinstance(target, ast.Name):
                            tainted.add(target.id)
                elif isinstance(node.value, ast.Call):
                    # sorted(s) etc. launders the taint
                    pass
            elif isinstance(node, ast.For):
                if _is_unordered_expr(node.iter, tainted):
                    yield ctx.finding(
                        DET_SET_ORDER, node,
                        "iterating a set — order varies across runs; "
                        "wrap in sorted(...) before the order can feed "
                        "numeric state",
                    )
            elif isinstance(node, ast.comprehension):
                if _is_unordered_expr(node.iter, tainted):
                    yield ctx.finding(
                        DET_SET_ORDER, getattr(node.iter, "lineno", 1),
                        "comprehension over a set — order varies across "
                        "runs; wrap in sorted(...) if order matters "
                        "downstream",
                    )
            elif isinstance(node, ast.Call):
                name = _dotted(node.func)
                base = name.split(".")[-1]
                if base in _ORDERING_SINKS and node.args:
                    if _is_unordered_expr(node.args[0], tainted):
                        yield ctx.finding(
                            DET_SET_ORDER, node,
                            f"'{base}(...)' materializes a set's "
                            "iteration order — wrap the argument in "
                            "sorted(...)",
                        )
