"""General hygiene rules.

``BROAD-EXCEPT`` — ``except:`` / ``except Exception:`` /
``except BaseException:`` swallow programming errors (including the
``ServiceError`` contract violations every other layer relies on
surfacing).  Handlers whose body *ends by re-raising* are exempt —
that's the narrow-and-convert pattern (catch broad, wrap in a typed
error, raise) this repo uses at process boundaries.  Deliberate
swallowers must carry ``# repro: allow[BROAD-EXCEPT] — <why>``.
"""

from __future__ import annotations

import ast
from typing import Iterator

from .framework import AnalysisConfig, FileContext, Finding, rule

__all__ = ["BROAD_EXCEPT"]

BROAD_EXCEPT = "BROAD-EXCEPT"

_BROAD_NAMES = {"Exception", "BaseException"}


def _is_broad(handler: ast.ExceptHandler) -> bool:
    if handler.type is None:
        return True
    node = handler.type
    if isinstance(node, ast.Attribute):  # builtins.Exception
        return node.attr in _BROAD_NAMES
    if isinstance(node, ast.Name):
        return node.id in _BROAD_NAMES
    if isinstance(node, ast.Tuple):
        return any(
            _is_broad(ast.ExceptHandler(type=el, name=None, body=[]))
            for el in node.elts
        )
    return False


def _ends_in_raise(body: list) -> bool:
    """True when every terminating path of the handler re-raises."""
    if not body:
        return False
    last = body[-1]
    if isinstance(last, ast.Raise):
        return True
    if isinstance(last, ast.If):
        return (
            _ends_in_raise(last.body)
            and bool(last.orelse)
            and _ends_in_raise(last.orelse)
        )
    return False


@rule(BROAD_EXCEPT)
def check_broad_except(
    ctx: FileContext, config: AnalysisConfig
) -> Iterator[Finding]:
    """broad exception handler swallows programming errors"""
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.ExceptHandler):
            continue
        if not _is_broad(node):
            continue
        if _ends_in_raise(node.body):
            continue  # catch-and-convert: the error still surfaces
        label = (
            "bare except"
            if node.type is None
            else f"except {ast.unparse(node.type)}"
        )
        yield ctx.finding(
            BROAD_EXCEPT, node,
            f"{label}: swallows programming errors — narrow it, or "
            "justify with # repro: allow[BROAD-EXCEPT] — <reason>",
        )
