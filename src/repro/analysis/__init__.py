"""repro.analysis — invariant lint for the repro codebase.

The repo's guarantees (bit-identical answers across serving
topologies, locks never held across blocking work, a pickle-free wire)
are enforced here as machine-checked rules instead of convention:

======================  ================================================
rule                    checks
======================  ================================================
``DET-GLOBAL-RNG``      no process-global RNG (np.random.*, stdlib
                        random) — all randomness flows through seeded
                        Generators
``DET-WALLCLOCK``       wall-clock reads stay in budgets/metrics, never
                        flow into results or seeds
``DET-SET-ORDER``       no set-iteration order feeding numeric state
``LOCK-HELD-BLOCKING``  no lock (except the session compute lock) held
                        across a GA run / transport I/O / pickling
``LOCK-ORDER-CYCLE``    the extracted lock-acquisition graph is a DAG
``WIRE-PICKLE``         no pickle in wire-facing service modules
``WIRE-ERROR``          every shard-raised exception reconstructs
                        across ``error_to_wire``
``BROAD-EXCEPT``        no silent ``except Exception:`` swallowers
``SUPPRESS-NO-REASON``  every suppression carries a justification
======================  ================================================

Findings are suppressed inline with ``# repro: allow[RULE-ID] — reason``
on the flagged line or the line above; the reason is mandatory.  Run
the gate locally with ``PYTHONPATH=src python -m repro.analysis src
--gate``; :class:`~repro.analysis.runtime.LockWitness` validates the
extracted lock graph against observed behavior in the test suite.

This package is stdlib-only and safe to import without numpy.
"""

from .framework import (
    AnalysisConfig,
    AnalysisReport,
    Finding,
    default_config,
    run_analysis,
)
from .locks import LockGraph, LockNode, extract_lock_graph
from .runtime import LockWitness, WitnessViolation

__all__ = [
    "AnalysisConfig",
    "AnalysisReport",
    "Finding",
    "LockGraph",
    "LockNode",
    "LockWitness",
    "WitnessViolation",
    "default_config",
    "extract_lock_graph",
    "run_analysis",
]
