"""WIRE rules: wire-format hygiene for the service boundary.

* ``WIRE-PICKLE`` — the socket/HTTP boundary must never pickle: a
  remote peer that can feed us pickles has arbitrary code execution
  over the front.  Pickle is banned in the wire-facing modules
  (:attr:`AnalysisConfig.pickle_banned_globs`; ``persistence.py`` is
  deliberately *not* in the list — local snapshots trust their own
  disk).
* ``WIRE-ERROR`` — every library exception a shard-side service module
  raises must reconstruct across :func:`repro.service.models.
  error_to_wire`, i.e. be a class defined in :mod:`repro.errors` (or a
  Python builtin, which ``error_from_wire`` maps by name).  An
  unregistered exception degrades to a bare ``ServiceError`` on the
  far side and callers lose the typed contract.
"""

from __future__ import annotations

import ast
import builtins
from typing import Iterator

from .framework import AnalysisConfig, FileContext, Finding, rule

__all__ = ["WIRE_PICKLE", "WIRE_ERROR", "errors_registry"]

WIRE_PICKLE = "WIRE-PICKLE"
WIRE_ERROR = "WIRE-ERROR"

_registry_cache: dict = {}


def errors_registry() -> frozenset:
    """Exception class names :func:`error_from_wire` can reconstruct
    (the classes defined in :mod:`repro.errors`), parsed from source so
    the analyzer stays importable without the package on ``sys.path``."""
    if "names" in _registry_cache:
        return _registry_cache["names"]
    names = set()
    try:
        from pathlib import Path

        errors_py = Path(__file__).resolve().parent.parent / "errors.py"
        tree = ast.parse(errors_py.read_text())
        for node in ast.walk(tree):
            if isinstance(node, ast.ClassDef):
                names.add(node.name)
    except (OSError, SyntaxError):  # pragma: no cover - source moved
        pass
    _registry_cache["names"] = frozenset(names)
    return _registry_cache["names"]


def _is_builtin_exception(name: str) -> bool:
    obj = getattr(builtins, name, None)
    return isinstance(obj, type) and issubclass(obj, BaseException)


@rule(WIRE_PICKLE)
def check_pickle(ctx: FileContext, config: AnalysisConfig) -> Iterator[Finding]:
    """pickle import in a wire-facing module"""
    if not config.matches(ctx.path, config.pickle_banned_globs):
        return
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name.split(".")[0] in ("pickle", "cPickle", "dill",
                                                "cloudpickle", "marshal",
                                                "shelve"):
                    yield ctx.finding(
                        WIRE_PICKLE, node,
                        f"'{alias.name}' imported in a wire-facing module "
                        "— remote bytes must never deserialize as code",
                    )
        elif isinstance(node, ast.ImportFrom):
            if node.module and node.module.split(".")[0] in (
                "pickle", "cPickle", "dill", "cloudpickle", "marshal",
                "shelve",
            ):
                yield ctx.finding(
                    WIRE_PICKLE, node,
                    f"'from {node.module} import ...' in a wire-facing "
                    "module — remote bytes must never deserialize as code",
                )


@rule(WIRE_ERROR)
def check_wire_errors(
    ctx: FileContext, config: AnalysisConfig
) -> Iterator[Finding]:
    """raised error type does not round-trip the error wire format"""
    if not config.matches(ctx.path, config.wire_error_globs):
        return
    if config.matches(ctx.path, config.wire_error_exclude_globs):
        return
    registered = errors_registry() | config.registered_errors
    # classes defined in this very file are module-local by construction
    local = {
        node.name
        for node in ast.walk(ctx.tree)
        if isinstance(node, ast.ClassDef)
    }
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Raise) or node.exc is None:
            continue
        exc = node.exc
        if isinstance(exc, ast.Call):
            exc = exc.func
        name = None
        if isinstance(exc, ast.Name):
            name = exc.id
        elif isinstance(exc, ast.Attribute):
            name = exc.attr
        if name is None:  # re-raise of a bound variable: out of scope
            continue
        if name in registered or name in local:
            continue
        if _is_builtin_exception(name):
            continue
        if not name[:1].isupper():  # raise some_factory(...) helper
            continue
        yield ctx.finding(
            WIRE_ERROR, node,
            f"'{name}' raised in shard-side service code but not "
            "registered in repro.errors — it will cross error_to_wire "
            "as a bare ServiceError",
        )
