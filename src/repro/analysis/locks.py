"""LOCK rules: lock-acquisition graph extraction and discipline checks.

The service tier holds two invariants by hand, established in PR 4/5:

1. **No lock is held across a blocking call** — a GA run, a transport
   ``send``/``recv``, ``pickle.dumps`` of a mesh — except the session
   ``compute_lock``, whose entire job is serializing that blocking work
   (:attr:`AnalysisConfig.compute_locks`).
2. **Lock acquisition order is a DAG** — the overlapped-update path
   nests ``Session.compute_lock → Session.lock →
   SessionManager._lock``; any code path nesting in the other
   direction is a deadlock waiting for load.

This pass machine-checks both.  It is deliberately *intraprocedural
plus summaries*: each function is walked once to collect its direct
lock acquisitions, direct blocking calls, and resolved callees; a
fixed-point pass propagates ``acquires``/``blocking`` through the call
graph; a final walk tracks the held-lock stack through each function
and emits:

* ``LOCK-HELD-BLOCKING`` — a non-compute lock held at a blocking call
  (direct, or into a callee whose summary blocks).
* ``LOCK-ORDER-CYCLE`` — a strongly connected component in the
  extracted acquisition graph.

Lock identity is nominal: ``self.X = threading.Lock()`` in class ``C``
defines node ``C.X``.  Receiver types are resolved heuristically —
``self`` → enclosing class, local ``x = ClassName(...)``, instance
attributes recorded from ``self.y = ClassName(...)``, snake-case
variable → CamelCase class, and unique-attribute fallback — and
anything unresolvable is *skipped*, not guessed: a missed edge is
acceptable, a fabricated one is not.  ``@property`` methods are indexed
so attribute reads like ``handle.alive`` (which acquires
``_ShardHandle._pending_lock``) count as calls.  ``threading.
Condition(lock)`` associates the condition with its lock; ``cond.
wait()`` is exempt with respect to that lock (wait releases it).

The extracted :class:`LockGraph` (with per-node definition sites) is
what the runtime witness (:mod:`repro.analysis.runtime`) validates
observed acquisition order against.
"""

from __future__ import annotations

import ast
import dataclasses
import re
from pathlib import Path
from typing import Iterable, Optional

from .framework import (
    AnalysisConfig,
    AnalysisReport,
    FileContext,
    Finding,
    default_config,
    project_rule,
)

__all__ = [
    "LOCK_HELD_BLOCKING",
    "LOCK_ORDER_CYCLE",
    "BLOCKING_MATCHERS",
    "LockGraph",
    "LockNode",
    "extract_lock_graph",
]

LOCK_HELD_BLOCKING = "LOCK-HELD-BLOCKING"
LOCK_ORDER_CYCLE = "LOCK-ORDER-CYCLE"

#: (method/attr name, receiver-text hint regex) — a call ``recv.name(...)``
#: is considered blocking when the receiver's source text matches the hint
BLOCKING_MATCHERS: tuple = (
    ("run", r"engine"),
    ("run_pending", r"."),
    ("partition_initial", r"."),
    ("update", r"partitioner"),
    ("dumps", r"pickle"),
    ("loads", r"pickle"),
    ("send", r"transport|conn|pipe|sock"),
    ("sendall", r"sock|conn"),
    ("sendmsg", r"sock|conn"),
    ("recv", r"transport|conn|pipe|sock"),
    ("recv_into", r"sock|conn"),
    ("select", r"sel"),
    ("result", r"fut|pool|submit"),
    ("join", r"thread|proc|timer|reader|restart|worker|pool"),
    ("wait", r"."),  # condition exemption applies, see _process_call
    ("sleep", r"^time$"),
    ("accept", r"listener|sock"),
    ("get", r"queue|_q$"),
)

#: names too generic for the unique-definition fallback
_COMMON_NAMES = frozenset(
    "run send recv close get put update submit wait start stop join result "
    "acquire acquire_timeout release append add items values keys pop copy "
    "open read write flush clear".split()
)

_LOCK_FACTORIES = {"Lock": "lock", "RLock": "rlock"}


def _dotted(node: ast.AST) -> str:
    parts = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return ""


def _receiver_text(node: ast.AST) -> str:
    text = _dotted(node)
    if text:
        return text
    try:
        return ast.unparse(node)
    except (ValueError, RecursionError):  # pragma: no cover - exotic nodes
        return ""


def _snake_to_camel(name: str) -> str:
    return "".join(part.capitalize() for part in name.strip("_").split("_"))


# ----------------------------------------------------------------------
# graph model
# ----------------------------------------------------------------------

@dataclasses.dataclass(frozen=True)
class LockNode:
    """One named lock with its definition site."""

    name: str
    kind: str  # "lock" | "rlock" | "condition"
    path: str
    line: int


@dataclasses.dataclass
class LockGraph:
    """The statically extracted acquisition graph."""

    nodes: dict = dataclasses.field(default_factory=dict)  # name -> LockNode
    #: (outer, inner) -> [(path, line), ...] acquisition sites
    edges: dict = dataclasses.field(default_factory=dict)
    cycles: list = dataclasses.field(default_factory=list)

    def add_node(self, node: LockNode) -> None:
        self.nodes.setdefault(node.name, node)

    def add_edge(self, outer: str, inner: str, path: str, line: int) -> None:
        self.edges.setdefault((outer, inner), []).append((path, line))

    def has_edge(self, outer: str, inner: str) -> bool:
        return (outer, inner) in self.edges

    def node_at(self, path: str, line: int) -> Optional[LockNode]:
        """The lock defined at a given source location (the runtime
        witness keys observed locks by creation site)."""
        norm = str(Path(path).resolve())
        for node in self.nodes.values():
            if node.line == line and str(Path(node.path).resolve()) == norm:
                return node
        return None

    def find_cycles(self) -> list:
        """Strongly connected components of size > 1, plus self-loops
        on non-reentrant locks."""
        adjacency: dict = {}
        for (outer, inner), _sites in self.edges.items():
            adjacency.setdefault(outer, set()).add(inner)
        index_of: dict = {}
        lowlink: dict = {}
        on_stack: set = set()
        stack: list = []
        sccs: list = []
        counter = [0]

        def strongconnect(v: str) -> None:
            index_of[v] = lowlink[v] = counter[0]
            counter[0] += 1
            stack.append(v)
            on_stack.add(v)
            for w in adjacency.get(v, ()):
                if w not in index_of:
                    strongconnect(w)
                    lowlink[v] = min(lowlink[v], lowlink[w])
                elif w in on_stack:
                    lowlink[v] = min(lowlink[v], index_of[w])
            if lowlink[v] == index_of[v]:
                component = []
                while True:
                    w = stack.pop()
                    on_stack.discard(w)
                    component.append(w)
                    if w == v:
                        break
                if len(component) > 1:
                    sccs.append(sorted(component))

        vertices = set(adjacency)
        for targets in adjacency.values():
            vertices.update(targets)
        for v in sorted(vertices):
            if v not in index_of:
                strongconnect(v)
        for (outer, inner) in self.edges:
            if outer == inner:
                node = self.nodes.get(outer)
                if node is None or node.kind != "rlock":
                    sccs.append([outer])
        self.cycles = sccs
        return sccs

    def to_json(self) -> dict:
        return {
            "nodes": [
                {
                    "name": n.name,
                    "kind": n.kind,
                    "path": n.path,
                    "line": n.line,
                }
                for n in sorted(self.nodes.values(), key=lambda n: n.name)
            ],
            "edges": [
                {
                    "outer": outer,
                    "inner": inner,
                    "sites": [{"path": p, "line": l} for p, l in sites],
                }
                for (outer, inner), sites in sorted(self.edges.items())
            ],
            "cycles": self.cycles,
        }


# ----------------------------------------------------------------------
# index: classes, methods, locks, properties
# ----------------------------------------------------------------------

class _ClassInfo:
    def __init__(self, name: str) -> None:
        self.name = name
        self.methods: dict = {}      # method name -> qname
        self.properties: set = set()
        self.attr_types: dict = {}   # self.X = ClassName(...) -> ClassName
        self.lock_attrs: dict = {}   # attr -> lock node name
        self.cond_attrs: dict = {}   # attr -> associated lock node name


class _Func:
    def __init__(self, qname, node, ctx, class_name):
        self.qname = qname
        self.node = node
        self.ctx = ctx
        self.class_name = class_name
        # summary (filled by the fixed point)
        self.direct_acquires: set = set()
        self.direct_blocking: list = []   # descriptions
        self.callees: set = set()
        self.acquires: set = set()
        self.blocking: list = []


class _Index:
    def __init__(self) -> None:
        self.classes: dict = {}
        self.funcs: dict = {}            # qname -> _Func
        self.methods_by_name: dict = {}  # bare name -> [qname]
        self.props_by_name: dict = {}    # property name -> [class name]
        self.lock_attr_owners: dict = {} # attr -> [node names]

    # -- construction --------------------------------------------------
    def build(self, contexts: Iterable[FileContext], graph: LockGraph) -> None:
        for ctx in contexts:
            stem = Path(ctx.path).stem
            for node in ast.walk(ctx.tree):
                if isinstance(node, ast.ClassDef):
                    self._index_class(node, ctx, graph)
            for stmt in ctx.tree.body:
                if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    qname = f"{stem}.{stmt.name}"
                    self.funcs[qname] = _Func(qname, stmt, ctx, None)
                    self.methods_by_name.setdefault(stmt.name, []).append(qname)
                elif isinstance(stmt, ast.Assign):
                    self._maybe_module_lock(stmt, stem, ctx, graph)

    def _index_class(self, cls: ast.ClassDef, ctx: FileContext,
                     graph: LockGraph) -> None:
        info = self.classes.setdefault(cls.name, _ClassInfo(cls.name))
        for item in cls.body:
            if not isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            qname = f"{cls.name}.{item.name}"
            info.methods[item.name] = qname
            self.funcs[qname] = _Func(qname, item, ctx, cls.name)
            self.methods_by_name.setdefault(item.name, []).append(qname)
            for deco in item.decorator_list:
                deco_name = _dotted(deco) or (
                    deco.id if isinstance(deco, ast.Name) else ""
                )
                if deco_name.split(".")[-1] in ("property", "cached_property"):
                    info.properties.add(item.name)
                    self.props_by_name.setdefault(item.name, []).append(cls.name)
            # scan the method body for self.X = ... definitions
            for node in ast.walk(item):
                if isinstance(node, ast.Assign) and len(node.targets) == 1:
                    target = node.targets[0]
                    if (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                    ):
                        self._record_self_assign(
                            info, target.attr, node, ctx, graph
                        )

    def _record_self_assign(self, info: _ClassInfo, attr: str,
                            node: ast.Assign, ctx: FileContext,
                            graph: LockGraph) -> None:
        value = node.value
        if not isinstance(value, ast.Call):
            return
        callee = _dotted(value.func)
        base = callee.split(".")[-1]
        if base in _LOCK_FACTORIES:
            name = f"{info.name}.{attr}"
            info.lock_attrs[attr] = name
            self.lock_attr_owners.setdefault(attr, []).append(name)
            graph.add_node(
                LockNode(name, _LOCK_FACTORIES[base], ctx.path, node.lineno)
            )
        elif base == "Condition":
            if value.args:
                # Condition(existing_lock): alias onto that lock node
                inner = value.args[0]
                if (
                    isinstance(inner, ast.Attribute)
                    and isinstance(inner.value, ast.Name)
                    and inner.value.id == "self"
                    and inner.attr in info.lock_attrs
                ):
                    info.cond_attrs[attr] = info.lock_attrs[inner.attr]
                    return
            name = f"{info.name}.{attr}"
            info.cond_attrs[attr] = name
            graph.add_node(LockNode(name, "condition", ctx.path, node.lineno))
        elif base and base[0].isupper():
            info.attr_types[attr] = base

    def _maybe_module_lock(self, stmt: ast.Assign, stem: str,
                           ctx: FileContext, graph: LockGraph) -> None:
        if len(stmt.targets) != 1 or not isinstance(stmt.targets[0], ast.Name):
            return
        value = stmt.value
        if not isinstance(value, ast.Call):
            return
        base = _dotted(value.func).split(".")[-1]
        if base in _LOCK_FACTORIES:
            name = f"{stem}:{stmt.targets[0].id}"
            graph.add_node(
                LockNode(name, _LOCK_FACTORIES[base], ctx.path, stmt.lineno)
            )

    # -- resolution ----------------------------------------------------
    def resolve_type(self, expr: ast.AST, env: "_Env") -> Optional[str]:
        if isinstance(expr, ast.Name):
            if expr.id == "self":
                return env.class_name
            if expr.id in env.locals_types:
                return env.locals_types[expr.id]
            camel = _snake_to_camel(expr.id)
            if camel in self.classes:
                return camel
            return None
        if isinstance(expr, ast.Attribute):
            owner = self.resolve_type(expr.value, env)
            if owner is not None:
                info = self.classes.get(owner)
                if info is not None and expr.attr in info.attr_types:
                    return info.attr_types[expr.attr]
            return None
        if isinstance(expr, ast.Call):
            base = _dotted(expr.func).split(".")[-1]
            if base in self.classes:
                return base
        return None

    def resolve_lock(self, expr: ast.AST, env: "_Env") -> Optional[str]:
        """The lock node a ``with``/``acquire`` expression names, if we
        can tell; None means "unknown — do not track"."""
        if isinstance(expr, ast.Name):
            return env.local_locks.get(expr.id)
        if not isinstance(expr, ast.Attribute):
            return None
        owner = self.resolve_type(expr.value, env)
        if owner is not None:
            info = self.classes.get(owner)
            if info is not None:
                if expr.attr in info.lock_attrs:
                    return info.lock_attrs[expr.attr]
                if expr.attr in info.cond_attrs:
                    return info.cond_attrs[expr.attr]
        # unique-attribute fallback: only one class defines this lock attr
        owners = self.lock_attr_owners.get(expr.attr, [])
        if len(owners) == 1:
            return owners[0]
        return None

    def resolve_condition(self, expr: ast.AST, env: "_Env") -> Optional[str]:
        """The lock associated with a condition-variable expression."""
        if not isinstance(expr, ast.Attribute):
            return None
        owner = self.resolve_type(expr.value, env)
        if owner is not None:
            info = self.classes.get(owner)
            if info is not None and expr.attr in info.cond_attrs:
                return info.cond_attrs[expr.attr]
        candidates = {
            info.cond_attrs[expr.attr]
            for info in self.classes.values()
            if expr.attr in info.cond_attrs
        }
        if len(candidates) == 1:
            return candidates.pop()
        return None

    def resolve_callee(self, func: ast.AST, env: "_Env") -> Optional[str]:
        if isinstance(func, ast.Name):
            qname = env.module_funcs.get(func.id)
            if qname is not None:
                return qname
            return None
        if not isinstance(func, ast.Attribute):
            return None
        owner = self.resolve_type(func.value, env)
        if owner is not None:
            info = self.classes.get(owner)
            if info is not None and func.attr in info.methods:
                return info.methods[func.attr]
        if func.attr in _COMMON_NAMES:
            return None
        qnames = self.methods_by_name.get(func.attr, [])
        if len(qnames) == 1:
            return qnames[0]
        return None

    def resolve_property(self, attr: ast.Attribute,
                         env: "_Env") -> Optional[str]:
        """``obj.attr`` read where ``attr`` is a known @property →
        the property method's qname."""
        owners = self.props_by_name.get(attr.attr)
        if not owners:
            return None
        owner = self.resolve_type(attr.value, env)
        if owner in owners:
            return self.classes[owner].methods[attr.attr]
        if len(owners) == 1:
            return self.classes[owners[0]].methods[attr.attr]
        return None


class _Env:
    """Per-function resolution environment."""

    def __init__(self, fn: _Func, index: _Index) -> None:
        self.class_name = fn.class_name
        self.locals_types: dict = {}
        self.local_locks: dict = {}
        stem = Path(fn.ctx.path).stem
        self.module_funcs = {
            name.split(".", 1)[1]: name
            for name, other in index.funcs.items()
            if other.class_name is None and name.startswith(stem + ".")
        }


# ----------------------------------------------------------------------
# per-function walking
# ----------------------------------------------------------------------

class _FunctionWalker:
    """One walk of one function body, in source order, tracking the
    held-lock stack.  Used twice: a summary pass (``emit=False``) and a
    reporting pass (``emit=True``)."""

    def __init__(self, fn: _Func, index: _Index, config: AnalysisConfig,
                 graph: LockGraph, emit: bool,
                 findings: Optional[list] = None) -> None:
        self.fn = fn
        self.index = index
        self.config = config
        self.graph = graph
        self.emit = emit
        self.findings = findings if findings is not None else []
        self.env = _Env(fn, index)
        self.held: list = []  # lock node names, outermost first

    # -- helpers -------------------------------------------------------
    def _held_relevant(self, exempt: Optional[str] = None) -> list:
        return [
            h
            for h in self.held
            if h not in self.config.compute_locks and h != exempt
        ]

    def _acquire(self, lock: str, line: int) -> None:
        for h in self.held:
            if self.emit and h != lock:
                self.graph.add_edge(h, lock, self.fn.ctx.path, line)
            if self.emit and h == lock:
                self.graph.add_edge(h, lock, self.fn.ctx.path, line)
        self.fn.direct_acquires.add(lock)
        self.held.append(lock)

    def _release(self, lock: str) -> None:
        for i in range(len(self.held) - 1, -1, -1):
            if self.held[i] == lock:
                del self.held[i]
                return

    def _report_blocking(self, line: int, desc: str) -> None:
        if not self.emit:
            return
        ctx = self.fn.ctx
        held = ", ".join(self._held_relevant())
        self.findings.append(
            ctx.finding(
                LOCK_HELD_BLOCKING, line,
                f"{held} held across blocking {desc} in {self.fn.qname}",
            )
        )

    # -- expression processing -----------------------------------------
    def _iter_calls(self, expr: ast.AST):
        """Calls and property reads in an expression, without descending
        into nested function/lambda bodies."""
        stack = [expr]
        while stack:
            node = stack.pop()
            if isinstance(
                node,
                (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda),
            ):
                continue
            yield node
            stack.extend(ast.iter_child_nodes(node))

    def process_expr(self, expr: Optional[ast.AST]) -> None:
        if expr is None:
            return
        for node in self._iter_calls(expr):
            if isinstance(node, ast.Call):
                self._process_call(node)
            elif isinstance(node, ast.Attribute) and isinstance(
                node.ctx, ast.Load
            ):
                self._process_property_read(node)

    def _process_property_read(self, attr: ast.Attribute) -> None:
        qname = self.index.resolve_property(attr, self.env)
        if qname is None:
            return
        self._apply_callee_summary(qname, attr.lineno, f"@property {attr.attr}")

    def _process_call(self, call: ast.Call) -> None:
        func = call.func
        line = call.lineno
        # explicit acquire()/release()
        if isinstance(func, ast.Attribute) and func.attr in (
            "acquire", "release"
        ):
            lock = self.index.resolve_lock(func.value, self.env)
            if lock is not None:
                if func.attr == "acquire":
                    self._acquire(lock, line)
                else:
                    self._release(lock)
            return
        # direct blocking matchers
        if isinstance(func, ast.Attribute):
            recv_text = _receiver_text(func.value).lower()
            for name, hint in BLOCKING_MATCHERS:
                if func.attr != name:
                    continue
                if not re.search(hint, recv_text):
                    continue
                exempt = None
                if name == "wait":
                    exempt = self.index.resolve_condition(func.value, self.env)
                desc = f"{recv_text or '?'}.{name}()"
                self.fn.direct_blocking.append(desc)
                if self._held_relevant(exempt):
                    self._report_blocking(line, desc)
                break
        # callee summaries
        qname = self.index.resolve_callee(func, self.env)
        if qname is not None and qname != self.fn.qname:
            self.fn.callees.add(qname)
            self._apply_callee_summary(qname, line, f"call {qname}()")

    def _apply_callee_summary(self, qname: str, line: int,
                              what: str) -> None:
        callee = self.index.funcs.get(qname)
        if callee is None:
            return
        if callee.blocking and self._held_relevant():
            self._report_blocking(
                line, f"{what} [blocks on {callee.blocking[0]}]"
            )
        if self.emit:
            for inner in callee.acquires:
                for h in self.held:
                    if h != inner:
                        self.graph.add_edge(h, inner, self.fn.ctx.path, line)

    # -- statement walking ---------------------------------------------
    def walk(self) -> None:
        self._exec_block(self.fn.node.body)

    def _exec_block(self, stmts: list) -> None:
        for stmt in stmts:
            self._exec_stmt(stmt)

    def _exec_stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, ast.With):
            acquired = []
            for item in stmt.items:
                expr = item.context_expr
                self.process_expr(expr)
                lock = self.index.resolve_lock(expr, self.env)
                if lock is not None:
                    self._acquire(lock, stmt.lineno)
                    acquired.append(lock)
            self._exec_block(stmt.body)
            for lock in reversed(acquired):
                self._release(lock)
        elif isinstance(stmt, ast.Assign):
            self.process_expr(stmt.value)
            self._track_assign(stmt)
        elif isinstance(stmt, (ast.AugAssign, ast.AnnAssign)):
            self.process_expr(stmt.value)
        elif isinstance(stmt, ast.Expr):
            self.process_expr(stmt.value)
        elif isinstance(stmt, ast.Return):
            self.process_expr(stmt.value)
        elif isinstance(stmt, (ast.If, ast.While)):
            self.process_expr(stmt.test)
            self._exec_block(stmt.body)
            self._exec_block(stmt.orelse)
        elif isinstance(stmt, ast.For):
            self.process_expr(stmt.iter)
            self._exec_block(stmt.body)
            self._exec_block(stmt.orelse)
        elif isinstance(stmt, ast.Try):
            self._exec_block(stmt.body)
            for handler in stmt.handlers:
                self._exec_block(handler.body)
            self._exec_block(stmt.orelse)
            self._exec_block(stmt.finalbody)
        elif isinstance(stmt, ast.Raise):
            self.process_expr(stmt.exc)
            self.process_expr(stmt.cause)
        elif isinstance(stmt, (ast.Assert, ast.Delete)):
            for value in ast.iter_child_nodes(stmt):
                self.process_expr(value)
        elif isinstance(
            stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            pass  # nested definitions get their own walk
        # remaining simple statements carry no calls we track

    def _track_assign(self, stmt: ast.Assign) -> None:
        if len(stmt.targets) != 1 or not isinstance(stmt.targets[0], ast.Name):
            return
        name = stmt.targets[0].id
        value = stmt.value
        # lock alias: x = self._lock  /  x = threading.Lock()
        if isinstance(value, ast.Call):
            base = _dotted(value.func).split(".")[-1]
            if base in _LOCK_FACTORIES:
                node_name = f"{self.fn.qname}.{name}"
                self.graph.add_node(
                    LockNode(
                        node_name,
                        _LOCK_FACTORIES[base],
                        self.fn.ctx.path,
                        stmt.lineno,
                    )
                )
                self.env.local_locks[name] = node_name
                return
            type_name = self.index.resolve_type(value, self.env)
            if type_name is not None:
                self.env.locals_types[name] = type_name
            return
        lock = self.index.resolve_lock(value, self.env)
        if lock is not None:
            self.env.local_locks[name] = lock
            return
        type_name = self.index.resolve_type(value, self.env)
        if type_name is not None:
            self.env.locals_types[name] = type_name


# ----------------------------------------------------------------------
# the project pass
# ----------------------------------------------------------------------

def _build(contexts: list, config: AnalysisConfig):
    graph = LockGraph()
    index = _Index()
    index.build(contexts, graph)

    # pass 1: direct effects (+ locals/type tracking happens per walk)
    for fn in index.funcs.values():
        fn.direct_acquires.clear()
        fn.direct_blocking.clear()
        fn.callees.clear()
        _FunctionWalker(fn, index, config, graph, emit=False).walk()

    # pass 2: fixed-point propagation of acquires/blocking
    for fn in index.funcs.values():
        fn.acquires = set(fn.direct_acquires)
        fn.blocking = list(fn.direct_blocking)
    for _ in range(len(index.funcs)):
        changed = False
        for fn in index.funcs.values():
            for callee_name in fn.callees:
                callee = index.funcs.get(callee_name)
                if callee is None:
                    continue
                if not fn.acquires.issuperset(callee.acquires):
                    fn.acquires |= callee.acquires
                    changed = True
                if callee.blocking and not fn.blocking:
                    fn.blocking = [
                        f"{callee_name}: {callee.blocking[0]}"
                    ]
                    changed = True
        if not changed:
            break
    return graph, index


@project_rule("locks")
def analyze_locks(contexts: list, config: AnalysisConfig,
                  report: AnalysisReport) -> None:
    if not contexts:
        return
    graph, index = _build(contexts, config)

    # pass 3: report — held-stack tracking with final summaries
    findings: list = []
    for fn in index.funcs.values():
        fn.direct_acquires = set()
        fn.direct_blocking = []
        walker = _FunctionWalker(
            fn, index, config, graph, emit=True, findings=findings
        )
        walker.walk()

    for cycle in graph.find_cycles():
        anchor = graph.nodes.get(cycle[0])
        ctx = next(
            (c for c in contexts if anchor is not None and c.path == anchor.path),
            contexts[0],
        )
        line = anchor.line if anchor is not None else 1
        findings.append(
            ctx.finding(
                LOCK_ORDER_CYCLE, line,
                "lock-order cycle: " + " -> ".join(cycle + [cycle[0]]),
            )
        )

    for finding in findings:
        ctx = report._contexts.get(finding.path)
        if ctx is not None and not config.rule_enabled(
            finding.rule, finding.path
        ):
            continue
        report.findings.append(finding)
    report.lock_graph = graph


def extract_lock_graph(
    paths: Iterable[str], config: Optional[AnalysisConfig] = None
) -> LockGraph:
    """Standalone lock-graph extraction (what the runtime witness and
    the tests consume)."""
    from .framework import run_analysis

    report = run_analysis(paths, config=config or default_config(), rules=[])
    return report.lock_graph
