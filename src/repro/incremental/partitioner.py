"""High-level incremental GA partitioner.

Owns a graph and its current partition; each :meth:`update` call accepts
an updated graph (old node ids preserved), seeds a GA population from
the previous partition per Section 3.5, re-optimizes with DKNUX, and
becomes the new state.  This is the object a mesh-refinement loop would
hold on to across adaptation steps (see ``examples/incremental_remesh.py``).

Two things persist across updates beyond the partition itself (PR 4):

* **The DKNUX dynamic estimate.**  Instead of rebuilding the operator
  cold per update (its estimate then restarts from the new population's
  generation-0 best), the previous best partition — extended to the new
  graph and re-evaluated there — is carried in as the initial estimate
  *with its fitness*, so the operator's domain knowledge survives the
  graph change and only yields to genuine improvements.
* **The engine, where safe.**  The engine is graph-bound; when an
  update re-optimizes the *same* graph the existing engine (evaluator
  row-hash memo and all) is reused instead of rebuilt.  The RNG stream
  is shared either way, so carrying state never forks determinism.

Update handling is split into three kernels so callers can shorten
their locks (:mod:`repro.service.sessions` overlaps updates this way):

* :meth:`begin_update` — *ingestion*: validate the new graph and
  snapshot nothing mutable (cheap, RNG-free — safe under a short lock,
  and safe to run concurrently with an in-flight optimization).
* :meth:`run_pending` — *optimization*: seed from whatever partition is
  current **at run time** (this is the rebase point: a pending update
  that waited behind another one seeds from that one's result, exactly
  as serial execution would) and run the engine.  Consumes the RNG
  stream; callers must serialize calls per partitioner.
* :meth:`commit_update` — install the result.  Raises
  :class:`StaleUpdateError` when another update committed between this
  one's optimization and its commit (only possible for pipelined
  callers); the caller rebases by re-running :meth:`run_pending`.

:meth:`update` composes the three, so the serial path and the
overlapped path execute literally the same code and produce identical
assignments.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from ..errors import ConfigError, PartitionError
from ..ga.config import GAConfig
from ..ga.dknux import DKNUX
from ..ga.engine import GAEngine, GAResult
from ..ga.fitness import make_fitness
from ..graphs.csr import CSRGraph
from ..partition.partition import Partition
from ..rng import SeedLike, as_generator
from .seeding import seed_population_from_previous

__all__ = ["IncrementalGAPartitioner", "PendingUpdate", "StaleUpdateError"]


class StaleUpdateError(PartitionError):
    """Another update committed while this one was optimizing; the
    caller should rebase (re-run the pending update, which will seed
    from the newly committed partition) and commit again."""


@dataclass
class PendingUpdate:
    """An ingested-but-uncommitted graph update."""

    new_graph: CSRGraph
    #: epoch observed when :meth:`run_pending` seeded the optimization;
    #: ``None`` until the pending update has been run
    run_epoch: Optional[int] = None
    result: Optional[GAResult] = field(default=None, repr=False)


class IncrementalGAPartitioner:
    """Stateful partitioner for graphs that change over time.

    Parameters
    ----------
    graph:
        The initial graph.
    n_parts:
        Number of parts (fixed across updates).
    fitness_kind:
        ``"fitness1"`` (total communication) or ``"fitness2"``
        (worst-case communication).
    config:
        GA settings used for the initial run and every update.
    initial_assignment:
        Optional heuristic start (e.g. an RSB solution); otherwise the
        first run starts from a random population.
    carry_estimate:
        Carry the DKNUX dynamic estimate across updates (see the module
        docstring).  On by default; ``False`` restores the
        rebuild-per-update behavior.
    """

    def __init__(
        self,
        graph: CSRGraph,
        n_parts: int,
        fitness_kind: str = "fitness1",
        config: Optional[GAConfig] = None,
        alpha: float = 1.0,
        seed: SeedLike = None,
        initial_assignment: Optional[np.ndarray] = None,
        carry_estimate: bool = True,
    ) -> None:
        if n_parts < 1:
            raise ConfigError(f"n_parts must be >= 1, got {n_parts}")
        self.n_parts = int(n_parts)
        self.fitness_kind = fitness_kind
        self.alpha = float(alpha)
        self.config = config or GAConfig(
            population_size=64,
            max_generations=80,
            hill_climb="all",
            hill_climb_passes=2,
            patience=15,
        )
        self.rng = as_generator(seed)
        self.graph = graph
        self.partition: Optional[Partition] = None
        self.last_result: Optional[GAResult] = None
        self.n_updates = 0
        self.carry_estimate = bool(carry_estimate)
        self._engine: Optional[GAEngine] = None
        self._epoch = 0  # bumped at every commit (and initial partition)
        if initial_assignment is not None:
            self.partition = Partition(graph, initial_assignment, self.n_parts)

    # ------------------------------------------------------------------
    def _run_engine(
        self, graph: CSRGraph, initial_population: Optional[np.ndarray]
    ) -> GAResult:
        engine = self._engine
        if engine is None or engine.graph is not graph:
            fitness = make_fitness(
                self.fitness_kind, graph, self.n_parts, self.alpha
            )
            crossover = DKNUX(graph, self.n_parts)
            if (
                self.carry_estimate
                and self.partition is not None
                and initial_population is not None
                and initial_population.shape[0] > 0
            ):
                # row 0 of the seeded population is the faithful
                # extension of the previous best — carry it (with its
                # fitness on the *new* graph) as the dynamic estimate
                estimate = initial_population[0]
                crossover.set_carried_estimate(
                    estimate, float(fitness.evaluate(estimate))
                )
            engine = GAEngine(
                graph, fitness, crossover, config=self.config, seed=self.rng
            )
            self._engine = engine
        return engine.run(initial_population)

    def partition_initial(self) -> Partition:
        """Partition the initial graph (uses ``initial_assignment`` as a
        seed if one was given)."""
        init_pop = None
        if self.partition is not None:
            from ..ga.population import seeded_population

            init_pop = seeded_population(
                self.graph,
                self.n_parts,
                self.config.population_size,
                self.partition.assignment,
                seed=self.rng,
            )
        result = self._run_engine(self.graph, init_pop)
        self.partition = result.best
        self.last_result = result
        self._epoch += 1
        return result.best

    # ------------------------------------------------------------------
    # the ingest → optimize → commit kernels (see module docstring)
    # ------------------------------------------------------------------
    def begin_update(self, new_graph: CSRGraph) -> PendingUpdate:
        """Ingest a graph update: validation only — cheap and RNG-free,
        so a short lock suffices and an in-flight optimization is never
        raced on shared state."""
        if self.partition is not None and new_graph.n_nodes < self.graph.n_nodes:
            raise PartitionError(
                "updated graph has fewer nodes than the current one; "
                "node removal is not part of the paper's incremental model"
            )
        return PendingUpdate(new_graph)

    def run_pending(self, pending: PendingUpdate) -> GAResult:
        """Optimize a pending update, seeding from the partition that is
        current *now* (the rebase point).

        Consumes the shared RNG stream — callers serialize calls per
        partitioner (the service pins each session to one worker slot).
        """
        if self.partition is None:
            raise PartitionError(
                "run_pending needs an existing partition; call "
                "partition_initial first (update() handles this case)"
            )
        if pending.new_graph.n_nodes < self.graph.n_nodes:
            # a competing update committed a *larger* graph since this
            # one was ingested — there is nothing to rebase onto (node
            # removal is outside the incremental model), so surface the
            # conflict instead of failing mid-seed with a shape error
            raise StaleUpdateError(
                "the session has moved past this update's graph "
                f"({self.graph.n_nodes} nodes committed vs "
                f"{pending.new_graph.n_nodes} pending); resubmit an "
                "update against the current graph"
            )
        pending.run_epoch = self._epoch
        init_pop = seed_population_from_previous(
            pending.new_graph,
            self.partition.assignment,
            self.n_parts,
            self.config.population_size,
            seed=self.rng,
        )
        pending.result = self._run_engine(pending.new_graph, init_pop)
        return pending.result

    def commit_update(self, pending: PendingUpdate) -> Partition:
        """Install an optimized pending update as the new state."""
        if pending.result is None or pending.run_epoch is None:
            raise PartitionError("pending update has not been run yet")
        if pending.run_epoch != self._epoch:
            raise StaleUpdateError(
                "another update committed during optimization; rebase by "
                "re-running the pending update"
            )
        result = pending.result
        self.graph = pending.new_graph
        self.partition = result.best
        self.last_result = result
        self.n_updates += 1
        self._epoch += 1
        return result.best

    # ------------------------------------------------------------------
    # failover snapshots (see repro.service.persistence)
    # ------------------------------------------------------------------
    @property
    def epoch(self) -> int:
        """Commit counter: bumped by the initial partition and every
        committed update.  Snapshot/restore round-trips it, so a restored
        partitioner resumes exactly at the epoch it last committed."""
        return self._epoch

    def snapshot_state(self) -> dict:
        """The partitioner's resumable state as one picklable dict.

        Captures everything the next :meth:`update` depends on — the
        graph, the committed partition, the RNG **bit-generator state**,
        the GA config, and the commit counters.  The engine is
        deliberately *not* captured: it is graph-bound and rebuilt on
        the next update exactly as an uninterrupted run rebuilds it when
        the graph changes, with the carried DKNUX estimate re-derived
        from the committed partition (row 0 of the seeded population) —
        so a partitioner restored via :meth:`from_state` produces
        updates bit-identical to one that never stopped.
        """
        return {
            "format": 1,
            "graph": self.graph,
            "assignment": (
                None
                if self.partition is None
                else np.asarray(self.partition.assignment, dtype=np.int64)
            ),
            "n_parts": self.n_parts,
            "fitness_kind": self.fitness_kind,
            "alpha": self.alpha,
            "config": self.config,
            "carry_estimate": self.carry_estimate,
            "rng_state": self.rng.bit_generator.state,
            "epoch": self._epoch,
            "n_updates": self.n_updates,
        }

    @classmethod
    def from_state(cls, state: dict) -> "IncrementalGAPartitioner":
        """Rebuild a partitioner from :meth:`snapshot_state` output."""
        try:
            partitioner = cls(
                state["graph"],
                state["n_parts"],
                fitness_kind=state["fitness_kind"],
                config=state["config"],
                alpha=state["alpha"],
                carry_estimate=state["carry_estimate"],
            )
            rng_state = state["rng_state"]
            bit_generator = getattr(np.random, rng_state["bit_generator"])()
            bit_generator.state = rng_state
            partitioner.rng = np.random.Generator(bit_generator)
            if state["assignment"] is not None:
                partitioner.partition = Partition(
                    state["graph"], state["assignment"], state["n_parts"]
                )
            partitioner._epoch = int(state["epoch"])
            partitioner.n_updates = int(state["n_updates"])
        except (KeyError, TypeError, AttributeError) as exc:
            raise PartitionError(
                f"unusable partitioner snapshot: {exc!r}"
            ) from exc
        return partitioner

    def update(self, new_graph: CSRGraph) -> Partition:
        """Re-partition after a graph update (old node ids preserved).

        Seeds the whole population from the previous partition, which is
        the paper's incremental strategy; falls back to
        :meth:`partition_initial` semantics when no partition exists yet.
        """
        if self.partition is None:
            self.graph = new_graph
            return self.partition_initial()
        pending = self.begin_update(new_graph)
        self.run_pending(pending)
        return self.commit_update(pending)

    def __repr__(self) -> str:
        state = "unpartitioned" if self.partition is None else (
            f"cut={self.partition.cut_size:g}"
        )
        return (
            f"IncrementalGAPartitioner(n_nodes={self.graph.n_nodes}, "
            f"n_parts={self.n_parts}, updates={self.n_updates}, {state})"
        )
