"""High-level incremental GA partitioner.

Owns a graph and its current partition; each :meth:`update` call accepts
an updated graph (old node ids preserved), seeds a GA population from
the previous partition per Section 3.5, re-optimizes with DKNUX, and
becomes the new state.  This is the object a mesh-refinement loop would
hold on to across adaptation steps (see ``examples/incremental_remesh.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from ..errors import ConfigError, PartitionError
from ..ga.config import GAConfig
from ..ga.dknux import DKNUX
from ..ga.engine import GAEngine, GAResult
from ..ga.fitness import make_fitness
from ..graphs.csr import CSRGraph
from ..partition.partition import Partition
from ..rng import SeedLike, as_generator
from .seeding import seed_population_from_previous

__all__ = ["IncrementalGAPartitioner"]


class IncrementalGAPartitioner:
    """Stateful partitioner for graphs that change over time.

    Parameters
    ----------
    graph:
        The initial graph.
    n_parts:
        Number of parts (fixed across updates).
    fitness_kind:
        ``"fitness1"`` (total communication) or ``"fitness2"``
        (worst-case communication).
    config:
        GA settings used for the initial run and every update.
    initial_assignment:
        Optional heuristic start (e.g. an RSB solution); otherwise the
        first run starts from a random population.
    """

    def __init__(
        self,
        graph: CSRGraph,
        n_parts: int,
        fitness_kind: str = "fitness1",
        config: Optional[GAConfig] = None,
        alpha: float = 1.0,
        seed: SeedLike = None,
        initial_assignment: Optional[np.ndarray] = None,
    ) -> None:
        if n_parts < 1:
            raise ConfigError(f"n_parts must be >= 1, got {n_parts}")
        self.n_parts = int(n_parts)
        self.fitness_kind = fitness_kind
        self.alpha = float(alpha)
        self.config = config or GAConfig(
            population_size=64,
            max_generations=80,
            hill_climb="all",
            hill_climb_passes=2,
            patience=15,
        )
        self.rng = as_generator(seed)
        self.graph = graph
        self.partition: Optional[Partition] = None
        self.last_result: Optional[GAResult] = None
        self.n_updates = 0
        if initial_assignment is not None:
            self.partition = Partition(graph, initial_assignment, self.n_parts)

    # ------------------------------------------------------------------
    def _run_engine(
        self, graph: CSRGraph, initial_population: Optional[np.ndarray]
    ) -> GAResult:
        fitness = make_fitness(self.fitness_kind, graph, self.n_parts, self.alpha)
        engine = GAEngine(
            graph,
            fitness,
            DKNUX(graph, self.n_parts),
            config=self.config,
            seed=self.rng,
        )
        return engine.run(initial_population)

    def partition_initial(self) -> Partition:
        """Partition the initial graph (uses ``initial_assignment`` as a
        seed if one was given)."""
        init_pop = None
        if self.partition is not None:
            from ..ga.population import seeded_population

            init_pop = seeded_population(
                self.graph,
                self.n_parts,
                self.config.population_size,
                self.partition.assignment,
                seed=self.rng,
            )
        result = self._run_engine(self.graph, init_pop)
        self.partition = result.best
        self.last_result = result
        return result.best

    def update(self, new_graph: CSRGraph) -> Partition:
        """Re-partition after a graph update (old node ids preserved).

        Seeds the whole population from the previous partition, which is
        the paper's incremental strategy; falls back to
        :meth:`partition_initial` semantics when no partition exists yet.
        """
        if self.partition is None:
            self.graph = new_graph
            return self.partition_initial()
        if new_graph.n_nodes < self.graph.n_nodes:
            raise PartitionError(
                "updated graph has fewer nodes than the current one; "
                "node removal is not part of the paper's incremental model"
            )
        init_pop = seed_population_from_previous(
            new_graph,
            self.partition.assignment,
            self.n_parts,
            self.config.population_size,
            seed=self.rng,
        )
        result = self._run_engine(new_graph, init_pop)
        self.graph = new_graph
        self.partition = result.best
        self.last_result = result
        self.n_updates += 1
        return result.best

    def __repr__(self) -> str:
        state = "unpartitioned" if self.partition is None else (
            f"cut={self.partition.cut_size:g}"
        )
        return (
            f"IncrementalGAPartitioner(n_nodes={self.graph.n_nodes}, "
            f"n_parts={self.n_parts}, updates={self.n_updates}, {state})"
        )
