"""Incremental graph updates (Section 4.2 of the paper).

The paper's incremental experiments "start with a graph, partition it,
then modify by adding some number of nodes in a local area chosen
randomly within the graph", and partition the modified graphs.  For
mesh workloads this models adaptive refinement: new mesh points appear
where the solution needs resolution.

:func:`insert_local_nodes` implements that update for coordinate meshes:
new points are sampled in a disc around a randomly chosen existing
vertex and the union point set is re-triangulated.  Existing vertices
keep their ids (new ids are appended), which is what lets the previous
partition seed the new problem.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..errors import GraphError
from ..graphs.csr import CSRGraph
from ..graphs.generators import delaunay_mesh
from ..rng import SeedLike, as_generator

__all__ = ["IncrementalUpdate", "insert_local_nodes"]


@dataclass(frozen=True)
class IncrementalUpdate:
    """Result of a graph update.

    Attributes
    ----------
    graph:
        The updated graph; nodes ``0 .. n_old-1`` are the original
        vertices (same ids, possibly different edges near the insertion
        region), nodes ``n_old ..`` are new.
    n_old:
        Number of pre-existing vertices.
    new_nodes:
        Ids of the inserted vertices.
    center:
        Id of the existing vertex around which insertion happened.
    """

    graph: CSRGraph
    n_old: int
    new_nodes: np.ndarray
    center: int

    @property
    def n_new(self) -> int:
        return int(self.new_nodes.size)


def insert_local_nodes(
    graph: CSRGraph,
    n_new: int,
    seed: SeedLike = None,
    radius: Optional[float] = None,
) -> IncrementalUpdate:
    """Add ``n_new`` vertices in a random local region of a mesh.

    Parameters
    ----------
    graph:
        A coordinate-carrying planar mesh (``coords`` required).
    n_new:
        Number of vertices to insert.
    seed:
        RNG seed; controls the region choice and the new points.
    radius:
        Insertion disc radius.  Default scales with the local mesh
        spacing so the refined region stays genuinely local: the disc
        area is ~3x the area the new points would occupy at the existing
        point density.
    """
    if graph.coords is None or graph.coords.shape[1] != 2:
        raise GraphError("insert_local_nodes requires 2-D coordinates")
    if n_new < 1:
        raise GraphError(f"n_new must be >= 1, got {n_new}")
    rng = as_generator(seed)
    n_old = graph.n_nodes
    coords = np.asarray(graph.coords)

    center = int(rng.integers(0, n_old))
    cpt = coords[center]
    if radius is None:
        # existing density: n_old points over the bounding-box area
        lo, hi = coords.min(axis=0), coords.max(axis=0)
        area = float(np.prod(np.maximum(hi - lo, 1e-12)))
        radius = float(np.sqrt(3.0 * n_new * area / (np.pi * n_old)))
    if radius <= 0:
        raise GraphError(f"radius must be positive, got {radius}")

    # disc sampling with rejection: points must stay inside the original
    # bounding box and be distinct from all other points (coincident
    # points would come out of the triangulation as isolated vertices)
    lo, hi = coords.min(axis=0), coords.max(axis=0)
    accepted: list[np.ndarray] = []
    existing = coords
    tol = 1e-9
    for _ in range(200 * n_new):
        if len(accepted) == n_new:
            break
        r = radius * np.sqrt(rng.random())
        theta = 2 * np.pi * rng.random()
        cand = cpt + np.array([r * np.cos(theta), r * np.sin(theta)])
        if np.any(cand < lo) or np.any(cand > hi):
            continue
        pool = (
            np.vstack([existing] + accepted) if accepted else existing
        )
        if np.min(np.sum((pool - cand) ** 2, axis=1)) < tol:
            continue
        accepted.append(cand[None, :])
    if len(accepted) < n_new:
        raise GraphError(
            f"could not place {n_new} distinct points in radius {radius:g}; "
            "increase the radius"
        )
    pts = np.vstack(accepted)

    all_pts = np.vstack([coords, pts])
    new_graph = delaunay_mesh(all_pts)
    # carry node weights: old weights preserved, new nodes unit weight
    node_w = np.concatenate([graph.node_weights, np.ones(n_new)])
    new_graph = new_graph.with_weights(node_weights=node_w)
    return IncrementalUpdate(
        graph=new_graph,
        n_old=n_old,
        new_nodes=np.arange(n_old, n_old + n_new),
        center=center,
    )
