"""Seeding GA populations from a previous partition (Section 3.5).

"In the incremental case, the previous partitioning can itself be used
to generate a good partitioning for the changed graph by randomly
assigning new graph nodes to various [parts], while at the same time
ensuring that balance is maintained."

Every individual in the seeded population keeps the old nodes' labels
and draws an independent balanced random placement of the new nodes, so
the population starts concentrated in the (presumably good) region of
the search space around the previous solution while still being diverse
where the problem actually changed.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..errors import PartitionError
from ..graphs.csr import CSRGraph
from ..partition.balance import assign_balanced
from ..rng import SeedLike, as_generator

__all__ = ["extend_assignment", "seed_population_from_previous"]


def extend_assignment(
    new_graph: CSRGraph,
    old_assignment: np.ndarray,
    n_parts: int,
    seed: SeedLike = None,
) -> np.ndarray:
    """One extension of ``old_assignment`` to the updated graph.

    Old nodes (ids ``0..len(old_assignment)-1``) keep their part; new
    nodes are placed randomly into the currently lightest parts.
    """
    old = np.asarray(old_assignment, dtype=np.int64)
    n_old = old.shape[0]
    if n_old > new_graph.n_nodes:
        raise PartitionError(
            f"old assignment has {n_old} nodes but new graph only "
            f"{new_graph.n_nodes}"
        )
    if old.size and (old.min() < 0 or old.max() >= n_parts):
        raise PartitionError("old assignment labels out of range")
    full = np.zeros(new_graph.n_nodes, dtype=np.int64)
    full[:n_old] = old
    new_nodes = np.arange(n_old, new_graph.n_nodes)
    return assign_balanced(new_graph, full, new_nodes, n_parts, seed=seed)


def seed_population_from_previous(
    new_graph: CSRGraph,
    old_assignment: np.ndarray,
    n_parts: int,
    pop_size: int,
    seed: SeedLike = None,
    perturb_rate: float = 0.02,
) -> np.ndarray:
    """Population of independent balanced extensions of the previous
    partition.

    Beyond the paper's randomized new-node placement, each individual's
    *old* genes are also jittered at ``perturb_rate`` (labels replaced by
    a random neighbor's label), because node insertion shifts the
    optimal boundaries near the refined region; set ``perturb_rate=0``
    for the paper's pure scheme.
    """
    if pop_size < 1:
        raise PartitionError(f"pop_size must be >= 1, got {pop_size}")
    if not 0.0 <= perturb_rate <= 1.0:
        raise PartitionError(f"perturb_rate must be in [0,1], got {perturb_rate}")
    rng = as_generator(seed)
    n_old = np.asarray(old_assignment).shape[0]
    pop = np.empty((pop_size, new_graph.n_nodes), dtype=np.int64)
    for r in range(pop_size):
        pop[r] = extend_assignment(new_graph, old_assignment, n_parts, seed=rng)
    if perturb_rate > 0 and pop_size > 1:
        # leave row 0 as a faithful extension; jitter old genes elsewhere
        degrees = np.diff(new_graph.indptr)
        block = pop[1:, :n_old]
        mask = (rng.random(block.shape) < perturb_rate) & (
            degrees[None, :n_old] > 0
        )
        rr, cc = np.nonzero(mask)
        if rr.size:
            offsets = (rng.random(rr.size) * degrees[cc]).astype(np.int64)
            nbrs = new_graph.indices[new_graph.indptr[cc] + offsets]
            block[rr, cc] = pop[1 + rr, nbrs]
    return pop
