"""Incremental graph partitioning: updates, seeding, naive baseline."""

from .updates import IncrementalUpdate, insert_local_nodes
from .seeding import extend_assignment, seed_population_from_previous
from .naive import naive_incremental_partition
from .partitioner import (
    IncrementalGAPartitioner,
    PendingUpdate,
    StaleUpdateError,
)

__all__ = [
    "IncrementalUpdate",
    "insert_local_nodes",
    "extend_assignment",
    "seed_population_from_previous",
    "naive_incremental_partition",
    "IncrementalGAPartitioner",
    "PendingUpdate",
    "StaleUpdateError",
]
