"""The naive deterministic incremental baseline the paper dismisses.

Section 5: "The incremental partitioning results obtained using DKNUX
could not be obtained by a simple deterministic algorithm that assigns
new nodes to the part to which most of its nearest neighbors belong."
This module implements exactly that strawman so the claim can be
checked: new nodes are processed in order of decreasing attachment to
already-labelled nodes, each joining its neighbors' majority part
(ties broken toward the lighter part).
"""

from __future__ import annotations

import numpy as np

from ..errors import PartitionError
from ..graphs.csr import CSRGraph
from ..partition.partition import Partition

__all__ = ["naive_incremental_partition"]


def naive_incremental_partition(
    new_graph: CSRGraph,
    old_assignment: np.ndarray,
    n_parts: int,
) -> Partition:
    """Assign each new node to its neighbors' majority part."""
    old = np.asarray(old_assignment, dtype=np.int64)
    n_old = old.shape[0]
    if n_old > new_graph.n_nodes:
        raise PartitionError("old assignment longer than new graph")
    if old.size and (old.min() < 0 or old.max() >= n_parts):
        raise PartitionError("old labels out of range")
    labels = np.full(new_graph.n_nodes, -1, dtype=np.int64)
    labels[:n_old] = old
    loads = np.zeros(n_parts)
    assigned = labels >= 0
    np.add.at(loads, labels[assigned], new_graph.node_weights[assigned])

    pending = set(range(n_old, new_graph.n_nodes))
    while pending:
        # choose the pending node with the greatest labelled-neighbor
        # weight (most informed decision first)
        best_node = -1
        best_support = -1.0
        # sorted: the greedy tie-break must not depend on set order
        for node in sorted(pending):
            nbrs = new_graph.neighbors(node)
            wts = new_graph.neighbor_weights(node)
            support = float(wts[labels[nbrs] >= 0].sum())
            if support > best_support:
                best_support = support
                best_node = node
        node = best_node
        pending.remove(node)
        nbrs = new_graph.neighbors(node)
        wts = new_graph.neighbor_weights(node)
        votes = np.zeros(n_parts)
        known = labels[nbrs] >= 0
        np.add.at(votes, labels[nbrs[known]], wts[known])
        if votes.max() <= 0:
            q = int(np.argmin(loads))  # isolated: balance decides
        else:
            winners = np.flatnonzero(votes == votes.max())
            q = int(winners[np.argmin(loads[winners])])
        labels[node] = q
        loads[q] += new_graph.node_weights[node]
    return Partition(new_graph, labels, n_parts)
