"""Deterministic random-number-generator plumbing.

All stochastic components of the library accept either an integer seed,
``None`` (fresh OS entropy), or a ready-made :class:`numpy.random.Generator`.
:func:`as_generator` normalizes the three forms.  :func:`spawn` derives
independent child streams — used e.g. by the distributed-population GA to
give every island its own stream so results do not depend on scheduling
order.
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

import numpy as np

__all__ = ["SeedLike", "as_generator", "spawn", "seed_sequence"]

SeedLike = Union[None, int, np.random.Generator, np.random.SeedSequence]


def as_generator(seed: SeedLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for any accepted seed form.

    Passing an existing generator returns it unchanged (shared state);
    passing an ``int`` or ``SeedSequence`` builds a fresh PCG64 stream;
    ``None`` seeds from OS entropy.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if isinstance(seed, np.random.SeedSequence):
        return np.random.default_rng(seed)
    return np.random.default_rng(seed)


def seed_sequence(seed: SeedLike = None) -> np.random.SeedSequence:
    """Build a :class:`numpy.random.SeedSequence` from any accepted form.

    Generators cannot be converted back into a seed sequence; for a
    generator input we draw one 63-bit integer from it to root the
    sequence, which keeps downstream streams deterministic given the
    generator's state.
    """
    if isinstance(seed, np.random.SeedSequence):
        return seed
    if isinstance(seed, np.random.Generator):
        return np.random.SeedSequence(int(seed.integers(0, 2**63 - 1)))
    return np.random.SeedSequence(seed)


def spawn(seed: SeedLike, n: int) -> list[np.random.Generator]:
    """Derive ``n`` independent generators from ``seed``.

    The streams are statistically independent regardless of how many are
    drawn from each, which makes island-parallel runs reproducible under
    any interleaving.
    """
    if n < 0:
        raise ValueError(f"cannot spawn {n} generators")
    children: Sequence[np.random.SeedSequence] = seed_sequence(seed).spawn(n)
    return [np.random.default_rng(c) for c in children]
