"""Exception hierarchy for the :mod:`repro` library.

Every error raised intentionally by this library derives from
:class:`ReproError`, so callers can catch library failures without
masking programming errors (``TypeError`` etc. propagate unchanged).
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "GraphError",
    "GraphFormatError",
    "PartitionError",
    "ConfigError",
    "ConvergenceError",
    "ExperimentError",
    "ServiceError",
    "ShardDiedError",
]


class ReproError(Exception):
    """Base class for all library errors."""


class GraphError(ReproError):
    """Invalid graph structure or an operation unsupported for a graph."""


class GraphFormatError(GraphError):
    """Malformed external graph representation (file parsing, etc.)."""


class PartitionError(ReproError):
    """Invalid partition (wrong length, bad labels, unsatisfiable balance)."""


class ConfigError(ReproError):
    """Invalid configuration value for an algorithm."""


class ConvergenceError(ReproError):
    """A numerical routine (e.g. the Fiedler eigensolver) failed to converge."""


class ExperimentError(ReproError):
    """An experiment specification or run is invalid."""


class ServiceError(ReproError):
    """Invalid request to, or failed operation of, the partition service."""


class ShardDiedError(ServiceError):
    """A shard worker died (process exit, lost socket) while the request
    was in flight or before it could be sent.  The request was *not*
    completed; idempotent requests may be retried once the shard is
    restarted or reattached."""
